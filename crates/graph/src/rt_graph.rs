//! The relation-temporal graph `G_RT = (V, E)` (paper Sections III-B, IV-A,
//! Figure 2).
//!
//! `V = {v_ti | t = 1..T, i = 1..N}`; `E = E_S ∪ E_T` where the *relational*
//! edges `E_S` connect related stocks within one time-step and the *temporal*
//! edges `E_T` connect the same stock across consecutive time-steps. The
//! "cylinder" picture: each relational graph `G_R` is one plane, planes are
//! glued by temporal edges.
//!
//! RT-GCN factorises its computation (relational conv per plane, temporal
//! conv along the cylinder axis) so it never materialises `G_RT`; this module
//! exists to make the paper's object concrete, validate structural invariants
//! (fixed node/edge counts, no future-leaking temporal edges) and support the
//! case-study introspection.

use crate::relations::RelationTensor;

/// Node of `G_RT`: stock `stock` at time-step `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RtNode {
    pub t: usize,
    pub stock: usize,
}

/// Edge kind in `G_RT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtEdgeKind {
    /// Intra-time-step relational edge (solid blue in Figure 2).
    Relational,
    /// Inter-time-step edge connecting the same stock (solid black).
    Temporal,
}

/// The full relation-temporal graph over `T` time-steps and `N` stocks.
#[derive(Clone, Debug)]
pub struct RelationTemporalGraph {
    pub t_steps: usize,
    pub n_stocks: usize,
    /// Undirected relational pairs shared by every plane.
    relational_pairs: Vec<(usize, usize)>,
}

impl RelationTemporalGraph {
    /// Construct from a relation tensor (the planes share one edge set — the
    /// paper fixes nodes and edges for the whole train/test run).
    pub fn new(t_steps: usize, relations: &RelationTensor) -> Self {
        assert!(t_steps >= 1, "need at least one time-step");
        let relational_pairs = relations.pairs().map(|(i, j, _)| (i, j)).collect();
        RelationTemporalGraph { t_steps, n_stocks: relations.num_stocks(), relational_pairs }
    }

    /// `|V| = T · N`.
    pub fn num_nodes(&self) -> usize {
        self.t_steps * self.n_stocks
    }

    /// `|E_S|` — one undirected relational edge per related pair per plane.
    pub fn num_relational_edges(&self) -> usize {
        self.relational_pairs.len() * self.t_steps
    }

    /// `|E_T|` — one temporal edge per stock per consecutive step pair.
    pub fn num_temporal_edges(&self) -> usize {
        self.n_stocks * (self.t_steps - 1)
    }

    /// Total undirected edge count `|E|`.
    pub fn num_edges(&self) -> usize {
        self.num_relational_edges() + self.num_temporal_edges()
    }

    /// Whether two nodes are adjacent, and via which edge kind.
    pub fn edge_between(&self, a: RtNode, b: RtNode) -> Option<RtEdgeKind> {
        if a.t == b.t && a.stock != b.stock {
            let key = (a.stock.min(b.stock), a.stock.max(b.stock));
            if self.relational_pairs.iter().any(|&(i, j)| (i, j) == key) {
                return Some(RtEdgeKind::Relational);
            }
            None
        } else if a.stock == b.stock && a.t.abs_diff(b.t) == 1 {
            Some(RtEdgeKind::Temporal)
        } else {
            None
        }
    }

    /// Neighbours of a node (relational within the plane, temporal to the
    /// previous/next plane).
    pub fn neighbors(&self, v: RtNode) -> Vec<(RtNode, RtEdgeKind)> {
        assert!(v.t < self.t_steps && v.stock < self.n_stocks, "node out of range");
        let mut out = Vec::new();
        for &(i, j) in &self.relational_pairs {
            if i == v.stock {
                out.push((RtNode { t: v.t, stock: j }, RtEdgeKind::Relational));
            } else if j == v.stock {
                out.push((RtNode { t: v.t, stock: i }, RtEdgeKind::Relational));
            }
        }
        if v.t > 0 {
            out.push((RtNode { t: v.t - 1, stock: v.stock }, RtEdgeKind::Temporal));
        }
        if v.t + 1 < self.t_steps {
            out.push((RtNode { t: v.t + 1, stock: v.stock }, RtEdgeKind::Temporal));
        }
        out
    }

    /// Structural invariant check: every temporal edge links consecutive
    /// steps of one stock; every relational edge stays inside one plane.
    /// Returns `Err` with a description on violation (used by property tests).
    pub fn validate(&self) -> Result<(), String> {
        for &(i, j) in &self.relational_pairs {
            if i >= self.n_stocks || j >= self.n_stocks {
                return Err(format!("relational pair ({i},{j}) out of range"));
            }
            if i == j {
                return Err(format!("self relational pair ({i},{j})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> RelationTemporalGraph {
        let mut r = RelationTensor::new(3, 1);
        r.connect(0, 1, 0);
        r.connect(1, 2, 0);
        RelationTemporalGraph::new(4, &r)
    }

    #[test]
    fn counts_match_formulae() {
        let g = small_graph();
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_relational_edges(), 2 * 4);
        assert_eq!(g.num_temporal_edges(), 3 * 3);
        assert_eq!(g.num_edges(), 8 + 9);
        g.validate().unwrap();
    }

    #[test]
    fn edge_kinds() {
        let g = small_graph();
        let a = RtNode { t: 1, stock: 0 };
        assert_eq!(
            g.edge_between(a, RtNode { t: 1, stock: 1 }),
            Some(RtEdgeKind::Relational)
        );
        assert_eq!(g.edge_between(a, RtNode { t: 1, stock: 2 }), None, "0 and 2 unrelated");
        assert_eq!(
            g.edge_between(a, RtNode { t: 2, stock: 0 }),
            Some(RtEdgeKind::Temporal)
        );
        assert_eq!(g.edge_between(a, RtNode { t: 3, stock: 0 }), None, "non-consecutive");
        assert_eq!(g.edge_between(a, RtNode { t: 2, stock: 1 }), None, "diagonal edges don't exist");
    }

    #[test]
    fn neighbor_enumeration() {
        let g = small_graph();
        let nbrs = g.neighbors(RtNode { t: 0, stock: 1 });
        // Relational to 0 and 2 in plane 0, temporal to t=1 only (t=0 has no past).
        assert_eq!(nbrs.len(), 3);
        assert!(nbrs.contains(&(RtNode { t: 0, stock: 0 }, RtEdgeKind::Relational)));
        assert!(nbrs.contains(&(RtNode { t: 0, stock: 2 }, RtEdgeKind::Relational)));
        assert!(nbrs.contains(&(RtNode { t: 1, stock: 1 }, RtEdgeKind::Temporal)));
    }

    #[test]
    fn single_step_graph_has_no_temporal_edges() {
        let mut r = RelationTensor::new(2, 1);
        r.connect(0, 1, 0);
        let g = RelationTemporalGraph::new(1, &r);
        assert_eq!(g.num_temporal_edges(), 0);
        assert_eq!(g.num_edges(), 1);
    }
}
