//! Per-time-plane state for the streaming time-sensitive adjacency
//! (DESIGN.md §14).
//!
//! The time-sensitive strategy (Eq. 5) scales each relation edge's learned
//! importance by the feature correlation `⟨x_i, x_j⟩/√d` *per time plane*.
//! In batch mode every forward recomputes all `T` planes from the window
//! tensor; on the streaming path only the newest day is new — the other
//! `T − 1` planes were already seen. [`TimePlaneCache`] stores the **raw**
//! (pre-anchor-normalisation) per-edge inner products for every generated
//! day, so a day-advance refreshes exactly one plane, and a window's
//! correlation factor is assembled by rescaling cached dots with the
//! window-end anchors:
//!
//! ```text
//! ⟨x_i, x_j⟩/√d = rawdot_e(day) / (anchor_i · anchor_j · √d)
//! ```
//!
//! because anchor normalisation divides stock `i`'s features by a per-stock
//! scalar.
//!
//! ## Parity contract
//!
//! [`TimePlaneCache::push_day`] and the from-scratch rebuilds
//! ([`TimePlaneCache::from_history`], [`TimePlaneCache::set_edges`]) compute
//! each plane through the same pure per-day function, so streamed and
//! rebuilt caches are bit-identical. Against the direct
//! `edge_dot_batched` path (which dots *normalised* features) the assembled
//! correlations agree to float tolerance only — the division happens in a
//! different place.

use rtgcn_tensor::Tensor;

/// Raw per-edge feature inner products for every generated day, refreshed
/// one plane per day-advance and rebuilt in full on edge-set mutations.
#[derive(Clone, Debug)]
pub struct TimePlaneCache {
    n: usize,
    d: usize,
    /// Directed relation edges the dots are aligned with.
    edges: Vec<[usize; 2]>,
    days: usize,
    /// Raw feature history `(day, stock, feature)` row-major — kept so edge
    /// add/drop events can rebuild every plane for the new edge set.
    raw_hist: Vec<f32>,
    /// Per-day, per-edge raw inner products, `(day, edge)` row-major.
    rawdot: Vec<f32>,
}

impl TimePlaneCache {
    /// Empty cache over `n` stocks with `d` raw features per stock-day.
    pub fn new(n: usize, d: usize, edges: Vec<[usize; 2]>) -> Self {
        assert!(d > 0, "need at least one feature");
        for e in &edges {
            assert!(e[0] < n && e[1] < n, "edge {e:?} out of range for n={n}");
        }
        TimePlaneCache { n, d, edges, days: 0, raw_hist: Vec::new(), rawdot: Vec::new() }
    }

    /// Batch rebuild from a full raw-feature history, `(days, n, d)`
    /// row-major. The parity reference: pushing the same rows one at a time
    /// yields a bit-identical cache.
    pub fn from_history(n: usize, d: usize, edges: Vec<[usize; 2]>, raw: &[f32]) -> Self {
        assert_eq!(raw.len() % (n * d), 0, "raw history must be whole days");
        let mut c = TimePlaneCache::new(n, d, edges);
        for row in raw.chunks_exact(n * d) {
            c.push_day(row);
        }
        c
    }

    pub fn days(&self) -> usize {
        self.days
    }

    pub fn n_stocks(&self) -> usize {
        self.n
    }

    pub fn n_features(&self) -> usize {
        self.d
    }

    pub fn edges(&self) -> &[[usize; 2]] {
        &self.edges
    }

    /// Raw per-edge dots for one day's raw feature row — the single pure
    /// function both the incremental and rebuild paths go through.
    fn dots_for(raw_row: &[f32], edges: &[[usize; 2]], d: usize) -> Vec<f32> {
        edges
            .iter()
            .map(|&[s, t]| {
                let mut acc = 0.0f32;
                for f in 0..d {
                    acc += raw_row[s * d + f] * raw_row[t * d + f];
                }
                acc
            })
            .collect()
    }

    /// Ingest the next day's raw features (`n × d` row-major): appends one
    /// plane of per-edge dots. O(E·d) — only the newest plane is touched.
    pub fn push_day(&mut self, raw_row: &[f32]) {
        assert_eq!(raw_row.len(), self.n * self.d, "raw row must be n×d");
        refresh_counter().inc(1);
        self.rawdot.extend(Self::dots_for(raw_row, &self.edges, self.d));
        self.raw_hist.extend_from_slice(raw_row);
        self.days += 1;
    }

    /// Swap in a new directed edge set (after relation add/drop events) and
    /// rebuild every plane's dots from the stored raw history. O(days·E·d),
    /// paid only on mutation days.
    pub fn set_edges(&mut self, edges: Vec<[usize; 2]>) {
        for e in &edges {
            assert!(e[0] < self.n && e[1] < self.n, "edge {e:?} out of range for n={}", self.n);
        }
        rebuild_counter().inc(1);
        self.edges = edges;
        self.rawdot.clear();
        for row in self.raw_hist.chunks_exact(self.n * self.d) {
            self.rawdot.extend(Self::dots_for(row, &self.edges, self.d));
        }
    }

    /// Assemble the `(t_steps, E)` correlation factor for the window ending
    /// at `end_day`, given the per-stock window-end anchors (each stock's
    /// feature divisor) and the `√d` scale of Eq. 5.
    pub fn corr_window(
        &self,
        end_day: usize,
        t_steps: usize,
        anchors: &[f32],
        scale: f32,
    ) -> Tensor {
        assert!(end_day < self.days, "day {end_day} not ingested yet (have {})", self.days);
        assert!(end_day + 1 >= t_steps, "window of {t_steps} steps cannot end at day {end_day}");
        assert_eq!(anchors.len(), self.n, "one anchor per stock");
        let e_count = self.edges.len();
        let start = end_day + 1 - t_steps;
        let mut out = Tensor::zeros([t_steps, e_count]);
        for t in 0..t_steps {
            let plane = &self.rawdot[(start + t) * e_count..(start + t + 1) * e_count];
            let row = &mut out.data_mut()[t * e_count..(t + 1) * e_count];
            for (e, &[s, dst]) in self.edges.iter().enumerate() {
                row[e] = plane[e] / (anchors[s] * anchors[dst] * scale);
            }
        }
        out
    }
}

fn refresh_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("stream.plane.refresh"))
}

fn rebuild_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("stream.plane.rebuild"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_raw(days: usize, n: usize, d: usize) -> Vec<f32> {
        (0..days * n * d).map(|i| ((i * 37 + 11) % 23) as f32 * 0.5 - 4.0).collect()
    }

    #[test]
    fn incremental_equals_batch_rebuild_bitwise() {
        let (n, d) = (4, 3);
        let raw = toy_raw(30, n, d);
        let edges = vec![[0, 1], [1, 0], [2, 3], [3, 2], [0, 3], [3, 0]];
        let batch = TimePlaneCache::from_history(n, d, edges.clone(), &raw);
        let mut inc = TimePlaneCache::new(n, d, edges);
        for row in raw.chunks_exact(n * d) {
            inc.push_day(row);
        }
        assert_eq!(inc.days(), batch.days());
        let a: Vec<u32> = inc.rawdot.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = batch.rawdot.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_mutation_rebuild_matches_fresh_cache_bitwise() {
        let (n, d) = (5, 2);
        let raw = toy_raw(20, n, d);
        let mut cache = TimePlaneCache::from_history(n, d, vec![[0, 1], [1, 0]], &raw);
        let new_edges = vec![[0, 1], [1, 0], [2, 4], [4, 2]];
        cache.set_edges(new_edges.clone());
        let fresh = TimePlaneCache::from_history(n, d, new_edges, &raw);
        let a: Vec<u32> = cache.rawdot.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = fresh.rawdot.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "post-mutation rebuild must equal a fresh cache");
    }

    #[test]
    fn corr_window_matches_direct_normalised_dots() {
        // rawdot/(a_s·a_d·scale) must equal dotting anchor-normalised
        // features directly, to float tolerance.
        let (n, d) = (3, 4);
        let raw = toy_raw(12, n, d);
        let edges = vec![[0, 2], [2, 0], [1, 2], [2, 1]];
        let cache = TimePlaneCache::from_history(n, d, edges.clone(), &raw);
        let end_day = 9;
        let t_steps = 4;
        let anchors: Vec<f32> = (0..n).map(|i| 1.5 + i as f32).collect();
        let scale = (d as f32).sqrt();
        let got = cache.corr_window(end_day, t_steps, &anchors, scale);
        assert_eq!(got.dims(), &[t_steps, edges.len()]);
        for t in 0..t_steps {
            let day = end_day + 1 - t_steps + t;
            for (e, &[s, dst]) in edges.iter().enumerate() {
                let mut dot = 0.0f32;
                for f in 0..d {
                    let xs = raw[(day * n + s) * d + f] / anchors[s];
                    let xd = raw[(day * n + dst) * d + f] / anchors[dst];
                    dot += xs * xd;
                }
                let want = dot / scale;
                let have = got.at(&[t, e]);
                assert!(
                    (have - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "plane {t} edge {e}: {have} vs {want}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not ingested")]
    fn window_past_history_rejected() {
        let cache = TimePlaneCache::from_history(2, 1, vec![[0, 1]], &toy_raw(5, 2, 1));
        let _ = cache.corr_window(5, 2, &[1.0, 1.0], 1.0);
    }
}
