//! Precomputed, reusable normalised adjacency — the cache behind the fused
//! time-batched GCN kernels.
//!
//! The serial forward path renormalised `D̃^{-1/2}(A + I)D̃^{-1/2}` from
//! scratch on every call (and, for the time-sensitive strategy, once per
//! time plane). This cache precomputes everything that is static per fit:
//!
//! - the CSR grouping of the relation edges + self-loops (built once,
//!   shared by every [`rtgcn_tensor::Tape::spmm_batched`] call);
//! - the uniform-strategy weights (Eq. 3), fully static;
//! - a one-slot memo of the *frozen* weighted adjacency: at inference the
//!   learned relation importances `𝒜ᵀw + b` only change when the parameters
//!   do, so the renormalisation is recomputed on parameter change and reused
//!   across every scoring call in between (a backtest scores hundreds of
//!   days against one fixed parameter vector).
//!
//! The time-sensitive strategy still rebuilds its `XᵀX/√n` correlation
//! factor per step — that part genuinely depends on the window — but shares
//! the cached CSR layout and the once-per-forward importance term.

use crate::norm::renormalize_uniform;
use rtgcn_tensor::{CsrEdges, Edges};
use std::sync::{Arc, Mutex};

/// `(raw relation weights, normalised full weights)` memo entry for the
/// weighted strategy's one-slot renormalisation cache.
type FrozenEntry = (Box<[f32]>, Arc<Vec<f32>>);

/// See the module docs. Cheap to clone (`Arc`-shared layouts; the frozen
/// memo is cloned by value).
pub struct NormalizedAdjCache {
    /// Relation edges followed by one self-loop per node, CSR-grouped.
    csr: CsrEdges,
    /// Number of leading relation edges in `csr` (the rest are self-loops).
    n_rel_edges: usize,
    /// Eq. 3 weights (already renormalised), length `csr.len()`.
    uniform: Arc<Vec<f32>>,
    /// Memo of the last [`Self::normalized_frozen`] call.
    frozen: Mutex<Option<FrozenEntry>>,
}

impl NormalizedAdjCache {
    /// Build from the directed relation edges (no self-loops) over `n` nodes.
    pub fn new(n: usize, rel_edges: &[[usize; 2]]) -> Self {
        let norm = renormalize_uniform(n, rel_edges);
        NormalizedAdjCache {
            csr: CsrEdges::new(norm.edges),
            n_rel_edges: rel_edges.len(),
            uniform: Arc::new(norm.weights),
            frozen: Mutex::new(None),
        }
    }

    /// CSR layout over relation edges + self-loops (the propagation kernel's
    /// edge set).
    pub fn csr(&self) -> &CsrEdges {
        &self.csr
    }

    /// The full edge list (relation edges then self-loops), `Arc`-shared
    /// with [`Self::csr`].
    pub fn edges(&self) -> &Edges {
        &self.csr.edges
    }

    pub fn n_nodes(&self) -> usize {
        self.csr.n()
    }

    pub fn n_rel_edges(&self) -> usize {
        self.n_rel_edges
    }

    /// Precomputed uniform-strategy weights (Eq. 3), aligned with
    /// [`Self::edges`].
    pub fn uniform(&self) -> &Arc<Vec<f32>> {
        &self.uniform
    }

    /// Normalised adjacency for raw per-relation-edge weights, memoised on
    /// the weight values: returns the cached result when `raw_rel` matches
    /// the previous call bit-for-bit (the common case at inference, where
    /// `𝒜ᵀw + b` is constant between optimiser steps). Not differentiable —
    /// training paths must keep the on-tape renormalisation.
    pub fn normalized_frozen(&self, raw_rel: &[f32]) -> Arc<Vec<f32>> {
        assert_eq!(raw_rel.len(), self.n_rel_edges, "one raw weight per relation edge");
        let mut slot = self.frozen.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((key, cached)) = slot.as_ref() {
            if key.iter().zip(raw_rel).all(|(a, b)| a.to_bits() == b.to_bits()) {
                hit_counter().inc(1);
                return Arc::clone(cached);
            }
        }
        miss_counter().inc(1);
        let rel_pairs = &self.csr.edges.pairs[..self.n_rel_edges];
        let weights = Arc::new(crate::norm::renormalize(self.n_nodes(), rel_pairs, raw_rel).weights);
        *slot = Some((raw_rel.into(), Arc::clone(&weights)));
        weights
    }

    /// Drop the frozen-adjacency memo (e.g. after loading a checkpoint).
    pub fn invalidate(&self) {
        *self.frozen.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Wrap in an [`Arc`] for read-only sharing across serving workers.
    pub fn into_shared(self) -> SharedAdjCache {
        Arc::new(self)
    }

    /// A sibling cache sharing this one's CSR layout and uniform weights
    /// (`Arc`-shared, no recomputation) but with its own empty frozen memo.
    /// Used when several models serve the same graph concurrently: each
    /// gets a private memo slot keyed by its own parameters, so one model's
    /// weight updates never evict another's cached renormalisation.
    pub fn fork_layout(&self) -> NormalizedAdjCache {
        NormalizedAdjCache {
            csr: self.csr.clone(),
            n_rel_edges: self.n_rel_edges,
            uniform: Arc::clone(&self.uniform),
            frozen: Mutex::new(None),
        }
    }
}

/// Read-only handle to a cache shared across serving worker threads.
pub type SharedAdjCache = Arc<NormalizedAdjCache>;

fn hit_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("kernel.gcn.adj_cache.hit"))
}

fn miss_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("kernel.gcn.adj_cache.miss"))
}

impl Clone for NormalizedAdjCache {
    fn clone(&self) -> Self {
        NormalizedAdjCache {
            csr: self.csr.clone(),
            n_rel_edges: self.n_rel_edges,
            uniform: Arc::clone(&self.uniform),
            frozen: Mutex::new(self.frozen.lock().unwrap_or_else(|e| e.into_inner()).clone()),
        }
    }
}

impl std::fmt::Debug for NormalizedAdjCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NormalizedAdjCache")
            .field("n_nodes", &self.n_nodes())
            .field("n_rel_edges", &self.n_rel_edges)
            .field("n_edges", &self.csr.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_direct_renormalisation() {
        let edges = vec![[0, 1], [1, 0], [1, 2], [2, 1]];
        let cache = NormalizedAdjCache::new(3, &edges);
        let direct = renormalize_uniform(3, &edges);
        assert_eq!(cache.uniform().as_slice(), direct.weights.as_slice());
        assert_eq!(cache.edges().len(), 7, "4 relation edges + 3 self-loops");
        assert_eq!(cache.n_rel_edges(), 4);
    }

    #[test]
    fn frozen_memo_reuses_and_invalidates() {
        let edges = vec![[0, 1], [1, 0]];
        let cache = NormalizedAdjCache::new(2, &edges);
        let w1 = cache.normalized_frozen(&[2.0, 2.0]);
        let w2 = cache.normalized_frozen(&[2.0, 2.0]);
        assert!(Arc::ptr_eq(&w1, &w2), "identical inputs must hit the memo");
        let w3 = cache.normalized_frozen(&[3.0, 3.0]);
        assert!(!Arc::ptr_eq(&w1, &w3), "changed weights must recompute");
        // Hand check: degree = |2| + 1 = 3 → off-diagonal 2/3, self-loop 1/3.
        assert!((w1[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((w1[2] - 1.0 / 3.0).abs() < 1e-6);
        cache.invalidate();
        let w4 = cache.normalized_frozen(&[3.0, 3.0]);
        assert!(!Arc::ptr_eq(&w3, &w4), "invalidate must drop the memo");
        assert_eq!(w3.as_slice(), w4.as_slice());
    }

    #[test]
    fn frozen_matches_direct_renormalize() {
        let edges = vec![[0, 1], [1, 2], [2, 0]];
        let cache = NormalizedAdjCache::new(4, &edges);
        let raw = [0.5, -1.5, 2.0];
        let frozen = cache.normalized_frozen(&raw);
        let direct = crate::norm::renormalize(4, &edges, &raw);
        assert_eq!(frozen.as_slice(), direct.weights.as_slice());
    }

    #[test]
    fn empty_relation_set_is_self_loops_only() {
        let cache = NormalizedAdjCache::new(3, &[]);
        assert_eq!(cache.n_rel_edges(), 0);
        assert_eq!(cache.edges().len(), 3);
        let frozen = cache.normalized_frozen(&[]);
        assert!(frozen.iter().all(|&w| (w - 1.0).abs() < 1e-6));
    }
}
