//! The multi-relational stock-relation tensor `𝒜 ∈ {0,1}^{N×N×K}`
//! (paper Section III-A).
//!
//! Pairwise relations are multi-hot: stock pair `(i, j)` may share several
//! relation types at once (e.g. *supplier-customer* and *same-industry*).
//! Storage is sparse — only pairs with at least one active relation are kept —
//! because real relation ratios are tiny (0.3 %–6.9 %, paper Table III).

use std::collections::BTreeMap;

/// Identifies a relation type `k ∈ [0, K)`.
pub type RelationType = usize;

/// Sparse symmetric multi-relational tensor over `n` stocks and `k_types`
/// relation types.
#[derive(Clone, Debug, Default)]
pub struct RelationTensor {
    n: usize,
    k_types: usize,
    /// Canonical key `(min(i,j), max(i,j))` → multi-hot vector. The paper's
    /// relations are undirected (`a_ij = a_ji`).
    entries: BTreeMap<(usize, usize), Vec<bool>>,
}

impl RelationTensor {
    pub fn new(n: usize, k_types: usize) -> Self {
        RelationTensor { n, k_types, entries: BTreeMap::new() }
    }

    /// Number of stocks `N`.
    pub fn num_stocks(&self) -> usize {
        self.n
    }

    /// Number of relation types `K`.
    pub fn num_types(&self) -> usize {
        self.k_types
    }

    fn key(i: usize, j: usize) -> (usize, usize) {
        if i <= j {
            (i, j)
        } else {
            (j, i)
        }
    }

    /// Set relation `k` between stocks `i` and `j` (symmetric). Self
    /// relations are rejected — the graph adds self-loops separately during
    /// renormalisation.
    pub fn connect(&mut self, i: usize, j: usize, k: RelationType) {
        assert!(i < self.n && j < self.n, "stock index out of range ({i},{j}) for n={}", self.n);
        assert!(k < self.k_types, "relation type {k} out of range for K={}", self.k_types);
        assert_ne!(i, j, "self relations are not stored in 𝒜");
        let hot = self.entries.entry(Self::key(i, j)).or_insert_with(|| vec![false; self.k_types]);
        hot[k] = true;
    }

    /// Clear relation `k` between stocks `i` and `j` (symmetric). If no
    /// active type remains on the pair, the entry is dropped entirely so the
    /// pair stops contributing directed edges. Returns whether the flag was
    /// set. Streaming day events use this to express relations that lapse
    /// (acquisitions unwound, suppliers switched — MDGNN's dynamic graphs).
    pub fn disconnect(&mut self, i: usize, j: usize, k: RelationType) -> bool {
        assert!(i < self.n && j < self.n, "stock index out of range ({i},{j}) for n={}", self.n);
        assert!(k < self.k_types, "relation type {k} out of range for K={}", self.k_types);
        let key = Self::key(i, j);
        let Some(hot) = self.entries.get_mut(&key) else {
            return false;
        };
        let was = hot[k];
        hot[k] = false;
        if hot.iter().all(|&b| !b) {
            self.entries.remove(&key);
        }
        was
    }

    /// Drop the pair `(i, j)` entirely — every relation type at once.
    /// Returns whether the pair was related.
    pub fn disconnect_pair(&mut self, i: usize, j: usize) -> bool {
        self.entries.remove(&Self::key(i, j)).is_some()
    }

    /// Multi-hot vector `a_ij ∈ {0,1}^K`; `None` if the pair is unrelated.
    pub fn multi_hot(&self, i: usize, j: usize) -> Option<&[bool]> {
        self.entries.get(&Self::key(i, j)).map(|v| v.as_slice())
    }

    /// Multi-hot vector as `f32`s (all-zero if unrelated).
    pub fn multi_hot_f32(&self, i: usize, j: usize) -> Vec<f32> {
        match self.multi_hot(i, j) {
            Some(hot) => hot.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            None => vec![0.0; self.k_types],
        }
    }

    /// `sum(𝒜_ij) > 0` — whether any relation connects the pair (Eq. 3's
    /// predicate).
    pub fn related(&self, i: usize, j: usize) -> bool {
        self.entries.contains_key(&Self::key(i, j))
    }

    /// Number of related (unordered) pairs.
    pub fn num_related_pairs(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of unordered stock pairs with ≥ 1 relation — the paper's
    /// *relation ratio* (Table III).
    pub fn relation_ratio(&self) -> f64 {
        let total = self.n * (self.n - 1) / 2;
        if total == 0 {
            0.0
        } else {
            self.entries.len() as f64 / total as f64
        }
    }

    /// Number of relation types that actually occur on some pair.
    pub fn active_types(&self) -> usize {
        let mut seen = vec![false; self.k_types];
        for hot in self.entries.values() {
            for (k, &b) in hot.iter().enumerate() {
                if b {
                    seen[k] = true;
                }
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// All related unordered pairs with their multi-hot vectors, in
    /// deterministic (sorted) order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, &[bool])> + '_ {
        self.entries.iter().map(|(&(i, j), hot)| (i, j, hot.as_slice()))
    }

    /// Directed edge list (both directions per related pair), in
    /// deterministic order. This is the edge set each relational graph `G_R`
    /// shares across time-steps (paper Figure 2).
    pub fn directed_edges(&self) -> Vec<[usize; 2]> {
        let mut edges = Vec::with_capacity(self.entries.len() * 2);
        for (&(i, j), _) in self.entries.iter() {
            edges.push([i, j]);
            edges.push([j, i]);
        }
        edges
    }

    /// Per-directed-edge multi-hot vectors aligned with
    /// [`RelationTensor::directed_edges`], flattened row-major `(E, K)`.
    pub fn edge_multi_hot_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.entries.len() * 2 * self.k_types);
        for (_, hot) in self.entries.iter() {
            for _ in 0..2 {
                out.extend(hot.iter().map(|&b| if b { 1.0 } else { 0.0 }));
            }
        }
        out
    }

    /// Neighbour lists (deterministic order), excluding self.
    pub fn neighbor_lists(&self) -> Vec<Vec<usize>> {
        let mut nbrs = vec![Vec::new(); self.n];
        for (&(i, j), _) in self.entries.iter() {
            nbrs[i].push(j);
            nbrs[j].push(i);
        }
        for l in &mut nbrs {
            l.sort_unstable();
        }
        nbrs
    }

    /// Merge another relation tensor over the same stocks into this one,
    /// offsetting its type indices after ours. Returns the combined tensor.
    /// Used to fuse wiki + industry relations into one `𝒜` (Section V-A.2).
    pub fn union(&self, other: &RelationTensor) -> RelationTensor {
        assert_eq!(self.n, other.n, "union requires the same stock universe");
        let mut out = RelationTensor::new(self.n, self.k_types + other.k_types);
        for (&(i, j), hot) in self.entries.iter() {
            for (k, &b) in hot.iter().enumerate() {
                if b {
                    out.connect(i, j, k);
                }
            }
        }
        for (&(i, j), hot) in other.entries.iter() {
            for (k, &b) in hot.iter().enumerate() {
                if b {
                    out.connect(i, j, self.k_types + k);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_storage() {
        let mut r = RelationTensor::new(4, 3);
        r.connect(2, 1, 0);
        assert!(r.related(1, 2));
        assert!(r.related(2, 1));
        assert!(!r.related(0, 1));
        assert_eq!(r.multi_hot(1, 2).unwrap(), &[true, false, false]);
        assert_eq!(r.multi_hot(2, 1).unwrap(), &[true, false, false]);
    }

    #[test]
    fn multi_hot_encoding_example_from_paper() {
        // Paper III-A: j is supplier and funder of i with K=3 relations
        // (supplier-customer, funded-by, same-industry) → a_ij = [1,1,0].
        let mut r = RelationTensor::new(2, 3);
        r.connect(0, 1, 0);
        r.connect(0, 1, 1);
        assert_eq!(r.multi_hot_f32(0, 1), vec![1.0, 1.0, 0.0]);
        assert_eq!(r.multi_hot_f32(1, 0), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn relation_ratio_counts_pairs_once() {
        let mut r = RelationTensor::new(4, 1);
        r.connect(0, 1, 0);
        r.connect(0, 1, 0); // duplicate, no effect
        r.connect(2, 3, 0);
        assert_eq!(r.num_related_pairs(), 2);
        assert!((r.relation_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn directed_edges_have_both_directions() {
        let mut r = RelationTensor::new(3, 2);
        r.connect(0, 2, 1);
        let edges = r.directed_edges();
        assert_eq!(edges, vec![[0, 2], [2, 0]]);
        let hot = r.edge_multi_hot_flat();
        assert_eq!(hot, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn active_types_and_union() {
        let mut a = RelationTensor::new(3, 2);
        a.connect(0, 1, 1);
        let mut b = RelationTensor::new(3, 3);
        b.connect(1, 2, 0);
        let u = a.union(&b);
        assert_eq!(u.num_types(), 5);
        assert!(u.related(0, 1) && u.related(1, 2));
        assert_eq!(u.multi_hot_f32(0, 1), vec![0., 1., 0., 0., 0.]);
        assert_eq!(u.multi_hot_f32(1, 2), vec![0., 0., 1., 0., 0.]);
        assert_eq!(u.active_types(), 2);
    }

    #[test]
    fn disconnect_clears_types_and_drops_empty_pairs() {
        let mut r = RelationTensor::new(3, 2);
        r.connect(0, 1, 0);
        r.connect(0, 1, 1);
        assert!(r.disconnect(1, 0, 0), "flag was set (symmetric key)");
        assert!(r.related(0, 1), "one type still active");
        assert_eq!(r.multi_hot_f32(0, 1), vec![0.0, 1.0]);
        assert!(!r.disconnect(0, 1, 0), "already cleared");
        assert!(r.disconnect(0, 1, 1));
        assert!(!r.related(0, 1), "pair gone once all types cleared");
        assert!(r.directed_edges().is_empty());
    }

    #[test]
    fn disconnect_pair_removes_all_types() {
        let mut r = RelationTensor::new(3, 2);
        r.connect(0, 2, 0);
        r.connect(0, 2, 1);
        assert!(r.disconnect_pair(2, 0));
        assert!(!r.related(0, 2));
        assert!(!r.disconnect_pair(0, 2), "second removal is a no-op");
    }

    #[test]
    #[should_panic(expected = "self relations")]
    fn self_relation_rejected() {
        let mut r = RelationTensor::new(2, 1);
        r.connect(1, 1, 0);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let mut r = RelationTensor::new(4, 1);
        r.connect(3, 0, 0);
        r.connect(1, 0, 0);
        assert_eq!(r.neighbor_lists()[0], vec![1, 3]);
        assert_eq!(r.neighbor_lists()[3], vec![0]);
    }
}
