//! # rtgcn-graph
//!
//! The graph substrate of the RT-GCN reproduction:
//!
//! - [`relations::RelationTensor`] — the sparse multi-relational tensor
//!   `𝒜 ∈ {0,1}^{N×N×K}` of paper Section III-A;
//! - [`norm`] — Kipf–Welling renormalised adjacency (Eqs. 1–2), used to
//!   precompute the uniform strategy;
//! - [`rt_graph::RelationTemporalGraph`] — the formal `G_RT` object
//!   (Section III-B, Figure 2) with structural invariants;
//! - [`hypergraph::Hypergraph`] — incidence substrate for the STHAN-SR
//!   baseline.
//!
//! Differentiable propagation happens in `rtgcn-core` / `rtgcn-baselines`
//! through `rtgcn-tensor`'s sparse kernels; this crate owns the *structure*.

pub mod cache;
pub mod hypergraph;
pub mod norm;
pub mod plane;
pub mod relations;
pub mod rt_graph;

pub use cache::{NormalizedAdjCache, SharedAdjCache};
pub use plane::TimePlaneCache;
pub use hypergraph::Hypergraph;
pub use norm::{renormalize, renormalize_uniform, NormalizedAdjacency, DEGREE_EPS};
pub use relations::{RelationTensor, RelationType};
pub use rt_graph::{RelationTemporalGraph, RtEdgeKind, RtNode};
