//! Kipf–Welling renormalised adjacency (paper Eq. 1–2).
//!
//! Given per-edge weights `A_ij`, we form `Ã = A + I_N` and return the
//! symmetric normalisation `D̃^{-1/2} Ã D̃^{-1/2}` as an edge list + weights.
//! Degrees use `|Ã_ij|` clamped to ≥ ε so that signed weights from the
//! learned strategies (Eqs. 4–5) keep propagation bounded (see DESIGN.md §6).

use rtgcn_tensor::Edges;

/// Minimum degree used in the inverse square root (guards divide-by-zero for
/// isolated nodes and degenerate learned weights).
pub const DEGREE_EPS: f32 = 1e-6;

/// A static (non-differentiable) normalised adjacency: edges plus one weight
/// per edge. Used to precompute the uniform strategy once before training.
#[derive(Clone, Debug)]
pub struct NormalizedAdjacency {
    pub edges: Edges,
    pub weights: Vec<f32>,
}

/// Build `D̃^{-1/2} (A + I) D̃^{-1/2}` from raw directed edges and weights
/// over `n` nodes. Input edges must not contain self-loops (they are added
/// here with weight 1).
pub fn renormalize(n: usize, raw_edges: &[[usize; 2]], raw_weights: &[f32]) -> NormalizedAdjacency {
    assert_eq!(raw_edges.len(), raw_weights.len(), "one weight per edge required");
    let mut pairs = Vec::with_capacity(raw_edges.len() + n);
    let mut weights = Vec::with_capacity(raw_edges.len() + n);
    for (&[s, d], &w) in raw_edges.iter().zip(raw_weights) {
        assert_ne!(s, d, "self-loops are added internally; remove them from input");
        pairs.push([s, d]);
        weights.push(w);
    }
    // Self-loops of Ã = A + I.
    for i in 0..n {
        pairs.push([i, i]);
        weights.push(1.0);
    }
    // D̃_ii = Σ_j |Ã_ij| (accumulated at the destination, symmetric inputs
    // make src/dst equivalent).
    let mut degree = vec![0.0f32; n];
    for (&[_, d], &w) in pairs.iter().zip(&weights) {
        degree[d] += w.abs();
    }
    let dinv: Vec<f32> = degree.iter().map(|&d| 1.0 / d.max(DEGREE_EPS).sqrt()).collect();
    for (p, w) in pairs.iter().zip(weights.iter_mut()) {
        *w *= dinv[p[0]] * dinv[p[1]];
    }
    NormalizedAdjacency { edges: Edges::new(n, pairs), weights }
}

/// Uniform-strategy adjacency (Eq. 3): weight 1 on every related pair, then
/// renormalised. `raw_edges` are the directed relation edges.
pub fn renormalize_uniform(n: usize, raw_edges: &[[usize; 2]]) -> NormalizedAdjacency {
    let w = vec![1.0; raw_edges.len()];
    renormalize(n, raw_edges, &w)
}

impl NormalizedAdjacency {
    /// Materialise as a dense matrix (tests / small-n introspection only).
    pub fn to_dense(&self) -> rtgcn_tensor::Tensor {
        let n = self.edges.n;
        let mut m = rtgcn_tensor::Tensor::zeros([n, n]);
        for (p, &w) in self.edges.pairs.iter().zip(&self.weights) {
            *m.at_mut(&[p[1], p[0]]) += w;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_graph_matches_hand_computation() {
        // Edge 0-1 both directions, weight 1. Ã = [[1,1],[1,1]], D̃ = diag(2,2),
        // normalised: all entries 1/2.
        let adj = renormalize_uniform(2, &[[0, 1], [1, 0]]);
        let dense = adj.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                assert!((dense.at(&[i, j]) - 0.5).abs() < 1e-6, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn isolated_node_gets_unit_self_loop() {
        let adj = renormalize_uniform(3, &[[0, 1], [1, 0]]);
        let dense = adj.to_dense();
        // Node 2 is isolated: degree 1 from its self-loop → entry 1.
        assert!((dense.at(&[2, 2]) - 1.0).abs() < 1e-6);
        assert_eq!(dense.at(&[2, 0]), 0.0);
    }

    #[test]
    fn row_sums_bounded_by_one_for_uniform() {
        // For non-negative weights the renormalised matrix is right-stochastic-ish:
        // each row sums to ≤ 1 (equality when the graph is regular).
        let edges = vec![[0, 1], [1, 0], [1, 2], [2, 1], [0, 2], [2, 0]];
        let adj = renormalize_uniform(3, &edges);
        let dense = adj.to_dense();
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| dense.at(&[i, j])).sum();
            assert!(s <= 1.0 + 1e-5, "row {i} sums to {s}");
            assert!(s > 0.5, "row {i} unexpectedly small: {s}");
        }
    }

    #[test]
    fn signed_weights_use_absolute_degree() {
        let adj = renormalize(2, &[[0, 1], [1, 0]], &[-3.0, -3.0]);
        let dense = adj.to_dense();
        // degree = |−3| + 1 = 4 at each node → off-diagonal = −3/4.
        assert!((dense.at(&[0, 1]) + 0.75).abs() < 1e-6);
        assert!((dense.at(&[0, 0]) - 0.25).abs() < 1e-6);
        assert!(!dense.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn input_self_loops_rejected() {
        let _ = renormalize_uniform(2, &[[0, 0]]);
    }

    #[test]
    fn symmetric_input_gives_symmetric_output() {
        let edges = vec![[0, 1], [1, 0], [1, 2], [2, 1]];
        let adj = renormalize_uniform(3, &edges);
        let d = adj.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-6);
            }
        }
    }
}
