//! Hierarchical span-tree aggregation: turns the flat `path → SpanStat`
//! registry map into a tree ordered pre-order, with **self time** (total
//! minus the totals of direct children) computed per node. Self time is the
//! quantity profilers attribute work to — a parent that merely waits on its
//! children shows ~0 self time — and is what the collapsed-stack exporter
//! ([`crate::trace`]) and `rtgcn-report`'s span-level regression attribution
//! consume.
//!
//! The same subtraction applies to the per-span allocation totals gathered
//! by the tracking allocator ([`crate::alloc`]): `self_alloc_bytes` is the
//! bytes allocated under a path minus the bytes its direct children already
//! account for.
//!
//! Paths are slash-joined (`seed/fit/epoch/relational/spmm_csr`), and the
//! registry's `BTreeMap` iteration order — lexicographic on the path — *is*
//! a pre-order traversal of the tree ('/' sorts before every path character
//! used in span names), so no explicit tree structure is built.

use crate::with_registry;
use std::collections::BTreeMap;

/// One aggregated span-tree node: the flat registry stats for a path plus
/// the derived self quantities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanAgg {
    /// Full slash-joined span path, e.g. `seed/fit/epoch/relational`.
    pub path: String,
    /// Completions recorded under this exact path.
    pub count: u64,
    /// Total wall time of all completions, ns.
    pub total_ns: u64,
    /// `total_ns` minus the `total_ns` of direct children (saturating: a
    /// child that outlives a still-open parent at flush time cannot drive
    /// the parent negative).
    pub self_ns: u64,
    /// Bytes allocated on the owning thread while the span was open
    /// (0 unless `RTGCN_ALLOC_STATS=1`; see [`crate::alloc`]).
    pub alloc_bytes: u64,
    /// Bytes freed on the owning thread while the span was open.
    pub freed_bytes: u64,
    /// `alloc_bytes` minus direct children's `alloc_bytes` (saturating).
    pub self_alloc_bytes: u64,
}

impl SpanAgg {
    /// Depth in the tree (number of '/' separators in the path).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Leaf name (the segment after the last '/').
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Parent path of a slash-joined span path (`None` for roots).
pub fn parent_path(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(parent, _)| parent)
}

/// Compute self totals for a flat `path → total` map: each parent's self
/// value is its total minus the sum of its *direct* children's totals,
/// saturating at zero. Paths whose parent is absent from the map (a span
/// that never closed) are treated as roots — their total is not subtracted
/// from anything.
pub fn self_totals(totals: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut selfs = totals.clone();
    for (path, total) in totals {
        if let Some(parent) = parent_path(path) {
            if let Some(parent_self) = selfs.get_mut(parent) {
                *parent_self = parent_self.saturating_sub(*total);
            }
        }
    }
    selfs
}

/// Build the aggregated tree (pre-order) from `(path, count, total_ns,
/// alloc_bytes, freed_bytes)` rows. Rows may arrive in any order.
pub fn aggregate(rows: impl IntoIterator<Item = (String, u64, u64, u64, u64)>) -> Vec<SpanAgg> {
    let mut by_path: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    for (path, count, total_ns, alloc, freed) in rows {
        let e = by_path.entry(path).or_insert((0, 0, 0, 0));
        e.0 += count;
        e.1 = e.1.saturating_add(total_ns);
        e.2 = e.2.saturating_add(alloc);
        e.3 = e.3.saturating_add(freed);
    }
    let time_totals: BTreeMap<String, u64> =
        by_path.iter().map(|(p, v)| (p.clone(), v.1)).collect();
    let alloc_totals: BTreeMap<String, u64> =
        by_path.iter().map(|(p, v)| (p.clone(), v.2)).collect();
    let self_ns = self_totals(&time_totals);
    let self_alloc = self_totals(&alloc_totals);
    by_path
        .into_iter()
        .map(|(path, (count, total_ns, alloc_bytes, freed_bytes))| SpanAgg {
            self_ns: self_ns.get(&path).copied().unwrap_or(total_ns),
            self_alloc_bytes: self_alloc.get(&path).copied().unwrap_or(alloc_bytes),
            path,
            count,
            total_ns,
            alloc_bytes,
            freed_bytes,
        })
        .collect()
}

/// Aggregate the calling thread's *current scope* registry into a tree.
pub fn snapshot_current() -> Vec<SpanAgg> {
    let rows: Vec<(String, u64, u64, u64, u64)> = with_registry(|r| {
        r.spans
            .lock()
            .iter()
            .map(|(p, st)| (p.clone(), st.count, st.total_ns, st.alloc_bytes, st.freed_bytes))
            .collect()
    });
    aggregate(rows)
}

/// Top `k` nodes by self time, descending (ties broken by path for
/// determinism). Zero-self nodes are skipped.
pub fn top_self(aggs: &[SpanAgg], k: usize) -> Vec<SpanAgg> {
    let mut v: Vec<SpanAgg> = aggs.iter().filter(|a| a.self_ns > 0).cloned().collect();
    v.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(spec: &[(&str, u64, u64)]) -> Vec<(String, u64, u64, u64, u64)> {
        spec.iter().map(|&(p, c, t)| (p.to_string(), c, t, 0, 0)).collect()
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let aggs = aggregate(rows(&[
            ("fit", 1, 100),
            ("fit/epoch", 2, 90),
            ("fit/epoch/loss", 2, 30),
            ("fit/epoch/backward", 2, 40),
        ]));
        let by: BTreeMap<&str, u64> = aggs.iter().map(|a| (a.path.as_str(), a.self_ns)).collect();
        assert_eq!(by["fit"], 10); // 100 − 90, grandchildren untouched
        assert_eq!(by["fit/epoch"], 20); // 90 − 30 − 40
        assert_eq!(by["fit/epoch/loss"], 30);
        assert_eq!(by["fit/epoch/backward"], 40);
    }

    #[test]
    fn orphan_child_does_not_underflow_parent() {
        // Child total exceeds parent total (parent still open at flush).
        let aggs = aggregate(rows(&[("a", 1, 10), ("a/b", 5, 25)]));
        let a = aggs.iter().find(|x| x.path == "a").unwrap();
        assert_eq!(a.self_ns, 0, "saturating, never wraps");
    }

    #[test]
    fn aggregation_order_is_preorder() {
        let aggs = aggregate(rows(&[
            ("fit/epoch2", 1, 1),
            ("fit", 1, 10),
            ("fit/epoch", 1, 1),
            ("fit/epoch/x", 1, 1),
        ]));
        let paths: Vec<&str> = aggs.iter().map(|a| a.path.as_str()).collect();
        // Children of fit/epoch sort before the sibling fit/epoch2.
        assert_eq!(paths, ["fit", "fit/epoch", "fit/epoch/x", "fit/epoch2"]);
    }

    #[test]
    fn top_self_ranks_descending_and_skips_zero() {
        let aggs = aggregate(rows(&[("a", 1, 50), ("a/b", 1, 50), ("c", 1, 30)]));
        let top = top_self(&aggs, 10);
        let paths: Vec<&str> = top.iter().map(|a| a.path.as_str()).collect();
        assert_eq!(paths, ["a/b", "c"]); // "a" has 0 self
    }

    #[test]
    fn alloc_self_mirrors_time_self() {
        let aggs = aggregate(vec![
            ("p".to_string(), 1, 10, 1000, 400),
            ("p/q".to_string(), 1, 5, 300, 100),
        ]);
        let p = aggs.iter().find(|a| a.path == "p").unwrap();
        assert_eq!(p.alloc_bytes, 1000);
        assert_eq!(p.self_alloc_bytes, 700);
        assert_eq!(p.freed_bytes, 400);
    }
}
