//! Opt-in heap-allocation tracking (`RTGCN_ALLOC_STATS=1`).
//!
//! [`TrackingAlloc`] wraps the system allocator and, when enabled, bumps a
//! set of process-global and thread-local byte counters on every
//! alloc/dealloc. The span layer snapshots the thread-local counters when a
//! span opens and attributes the delta to the span's path on drop, so the
//! span tree gains per-path `alloc`/`freed` byte totals (self values
//! computed by [`crate::spantree`], same subtraction as self time). The
//! process-global live/peak counters feed the health monitor's per-epoch
//! `mem.peak_bytes` gauge and the `alloc.*` counters published at flush.
//!
//! A binary opts in with:
//!
//! ```ignore
//! rtgcn_telemetry::install_tracking_allocator!();
//! ```
//!
//! (`#[global_allocator]` is once-per-binary, so the macro is invoked by
//! each harness `main.rs`, never by a library.) With `RTGCN_ALLOC_STATS`
//! unset the wrapper costs one relaxed atomic load per allocation.
//!
//! # Caveats
//!
//! - Attribution is **per thread**: bytes a worker thread allocates while a
//!   span is open on a *different* thread are not charged to that span.
//!   Rayon-free, pool-per-job RT-GCN code keeps a model's work on the
//!   entering thread, so in practice self-alloc lines up with self-time.
//! - `live`/`peak` are **process-global** (allocation sites cannot see
//!   scopes), so with `RTGCN_JOBS>1` the peak mixes concurrent models —
//!   profile with `RTGCN_JOBS=1` when the per-model number matters.
//! - The counters themselves never allocate (fixed atomics + const-init
//!   thread locals), so tracking cannot recurse into the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

static TOTAL_ALLOC: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOC: Cell<u64> = const { Cell::new(0) };
    static THREAD_FREED: Cell<u64> = const { Cell::new(0) };
}

/// Read `RTGCN_ALLOC_STATS` once and enable tracking if it is truthy.
/// Called by [`crate::init_harness`]; `env::var` allocates, so this must
/// never run inside the allocator itself.
pub fn init_from_env() {
    let on = std::env::var("RTGCN_ALLOC_STATS")
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false);
    set_tracking(on);
}

/// Programmatically enable/disable tracking (tests; overrides the env).
pub fn set_tracking(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation tracking is currently enabled.
#[inline]
pub fn tracking_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-wide bytes allocated since start of tracking.
pub fn total_allocated_bytes() -> u64 {
    TOTAL_ALLOC.load(Ordering::Relaxed)
}

/// Process-wide bytes freed since start of tracking.
pub fn total_freed_bytes() -> u64 {
    TOTAL_FREED.load(Ordering::Relaxed)
}

/// Currently live (allocated − freed) bytes seen by the tracker.
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since the last [`reset_peak`].
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restart the peak high-water mark from the current live level (the health
/// monitor calls this at each epoch boundary so `mem.peak_bytes` is a
/// per-epoch, not per-run, peak).
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Calling thread's cumulative `(allocated, freed)` byte counters. The span
/// layer subtracts two snapshots of this to charge an open span.
#[inline]
pub fn thread_counters() -> (u64, u64) {
    let a = THREAD_ALLOC.try_with(Cell::get).unwrap_or(0);
    let f = THREAD_FREED.try_with(Cell::get).unwrap_or(0);
    (a, f)
}

#[inline]
fn on_alloc(bytes: u64) {
    TOTAL_ALLOC.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed).wrapping_add(bytes);
    PEAK.fetch_max(live, Ordering::Relaxed);
    let _ = THREAD_ALLOC.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

#[inline]
fn on_free(bytes: u64) {
    TOTAL_FREED.fetch_add(bytes, Ordering::Relaxed);
    // Saturating: frees of blocks allocated before tracking was enabled
    // must not wrap the live gauge.
    let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(bytes))
    });
    let _ = THREAD_FREED.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

/// A `#[global_allocator]` shim over [`System`] that feeds the byte
/// counters when tracking is enabled. Install with
/// [`install_tracking_allocator!`](crate::install_tracking_allocator).
pub struct TrackingAlloc;

// SAFETY: defers every allocation verbatim to `System`; the bookkeeping
// touches only lock-free atomics and const-initialised thread-local `Cell`s
// (via `try_with`, tolerant of TLS teardown), so it never allocates,
// never blocks, and never panics inside the allocator.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && tracking_enabled() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: forwards the caller's contract straight to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if tracking_enabled() {
            on_free(layout.size() as u64);
        }
    }

    // SAFETY: forwards the caller's contract straight to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && tracking_enabled() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: forwards the caller's contract straight to `System.realloc`;
    // the counters treat it as free(old size) + alloc(new size).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && tracking_enabled() {
            on_free(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Install [`TrackingAlloc`] as the binary's `#[global_allocator]`. Invoke
/// once, at module scope, in each harness `main.rs`; tracking stays dormant
/// (one atomic load per allocation) until `RTGCN_ALLOC_STATS=1`.
#[macro_export]
macro_rules! install_tracking_allocator {
    () => {
        #[global_allocator]
        static RTGCN_TRACKING_ALLOC: $crate::alloc::TrackingAlloc =
            $crate::alloc::TrackingAlloc;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The real end-to-end assertions live in `tests/alloc_tracking.rs`,
    // which installs the allocator for its whole test binary. Here we only
    // exercise the counter arithmetic directly.
    #[test]
    fn counters_accumulate_and_peak_tracks_high_water() {
        on_alloc(1000);
        on_free(400);
        on_alloc(200);
        assert!(total_allocated_bytes() >= 1200);
        assert!(total_freed_bytes() >= 400);
        assert!(peak_live_bytes() >= live_bytes());
        let (ta, tf) = thread_counters();
        assert!(ta >= 1200 && tf >= 400);
        reset_peak();
        assert_eq!(peak_live_bytes(), live_bytes());
    }
}
