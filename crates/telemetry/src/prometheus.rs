//! Prometheus text-exposition rendering of the aggregate registry: one call
//! turns counters, histograms, span totals and series into a scrapeable
//! string — useful for snapshotting perf state without a JSONL consumer.

use crate::{with_registry, Histogram, HIST_BUCKETS};
use std::fmt::Write;
use std::sync::atomic::Ordering;

/// Map an internal dotted name (`backtest.day_score_ns`) onto a valid
/// Prometheus metric name (`rtgcn_backtest_day_score_ns`).
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("rtgcn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format (backslash, quote, LF).
fn label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render the registry in the Prometheus text exposition format:
///
/// - counters → `rtgcn_<name>_total` (TYPE `counter`);
/// - histograms → `rtgcn_<name>` with cumulative `_bucket{le="…"}` lines
///   (upper bounds in ns), `_sum` and `_count` (TYPE `histogram`);
/// - span aggregates → `rtgcn_span_total_ns{path="…"}` and
///   `rtgcn_span_count{path="…"}`;
/// - series → a gauge holding the latest recorded value.
///
/// Zero-valued counters and empty sections are omitted, so the dump is empty
/// when nothing has been recorded.
pub fn render_prometheus() -> String {
    with_registry(render_registry)
}

fn render_registry(r: &crate::Registry) -> String {
    let mut out = String::new();
    for (name, c) in r.counters.lock().iter() {
        let v = c.load(Ordering::Relaxed);
        if v == 0 {
            continue;
        }
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m}_total counter");
        let _ = writeln!(out, "{m}_total {v}");
    }
    for (name, h) in r.hists.lock().iter() {
        let total = h.count();
        if total == 0 {
            continue;
        }
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for i in 0..=HIST_BUCKETS {
            let n = h.buckets[i].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            if i < HIST_BUCKETS {
                let _ =
                    writeln!(out, "{m}_bucket{{le=\"{}\"}} {cumulative}", Histogram::bound(i));
            }
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{m}_sum {}", h.sum_ns.load(Ordering::Relaxed));
        let _ = writeln!(out, "{m}_count {total}");
        // Pre-computed p50/p95/p99 as summary-style quantile series, so a
        // scraper gets percentile estimates without re-deriving them from
        // the bucket boundaries.
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(out, "{m}{{quantile=\"{label}\"}} {}", h.percentile(q));
        }
    }
    let spans = r.spans.lock();
    if !spans.is_empty() {
        let _ = writeln!(out, "# TYPE rtgcn_span_total_ns counter");
        let _ = writeln!(out, "# TYPE rtgcn_span_count counter");
        for (path, st) in spans.iter() {
            let p = label_value(path);
            let _ = writeln!(out, "rtgcn_span_total_ns{{path=\"{p}\"}} {}", st.total_ns);
            let _ = writeln!(out, "rtgcn_span_count{{path=\"{p}\"}} {}", st.count);
        }
    }
    drop(spans);
    for (name, points) in r.series.lock().iter() {
        let Some(last) = points.last() else { continue };
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {}", last.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, gauge, record_ns, span, test_scope, Level};

    #[test]
    fn renders_all_four_sections() {
        let _g = test_scope(Level::Summary);
        count("tensor.matmul_calls", 3);
        record_ns("backtest.day_score_ns", 100);
        record_ns("backtest.day_score_ns", 100_000);
        gauge("fit.loss", 0, 0.5);
        gauge("fit.loss", 1, 0.25);
        drop(span("fit"));
        let text = render_prometheus();
        assert!(text.contains("# TYPE rtgcn_tensor_matmul_calls_total counter"), "{text}");
        assert!(text.contains("rtgcn_tensor_matmul_calls_total 3"), "{text}");
        assert!(text.contains("# TYPE rtgcn_backtest_day_score_ns histogram"), "{text}");
        assert!(text.contains("rtgcn_backtest_day_score_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("rtgcn_backtest_day_score_ns_count 2"), "{text}");
        assert!(text.contains("rtgcn_span_count{path=\"fit\"} 1"), "{text}");
        // Series render as a gauge holding the latest value.
        assert!(text.contains("# TYPE rtgcn_fit_loss gauge"), "{text}");
        assert!(text.contains("rtgcn_fit_loss 0.25"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sorted() {
        let _g = test_scope(Level::Summary);
        record_ns("h", 64); // first bucket
        record_ns("h", 64);
        record_ns("h", 8_192);
        let text = render_prometheus();
        assert!(text.contains("rtgcn_h_bucket{le=\"64\"} 2"), "{text}");
        assert!(text.contains("rtgcn_h_bucket{le=\"8192\"} 3"), "{text}");
        assert!(text.contains("rtgcn_h_sum 8320"), "{text}");
    }

    #[test]
    fn histograms_also_render_summary_quantiles() {
        let _g = test_scope(Level::Summary);
        record_ns("q", 64);
        record_ns("q", 64);
        record_ns("q", 8_192);
        let text = render_prometheus();
        // Rank 2 of 3 lands in the 64ns bucket; the p99 rank is the last
        // sample. Quantile values are bucket upper bounds, like the JSONL
        // hist events.
        assert!(text.contains("rtgcn_q{quantile=\"0.5\"} 64"), "{text}");
        assert!(text.contains("rtgcn_q{quantile=\"0.95\"} 8192"), "{text}");
        assert!(text.contains("rtgcn_q{quantile=\"0.99\"} 8192"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let _g = test_scope(Level::Summary);
        assert!(render_prometheus().is_empty());
    }
}
