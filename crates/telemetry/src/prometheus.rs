//! Prometheus text-exposition rendering of the aggregate registry: one call
//! turns counters, histograms, span totals and series into a scrapeable
//! string — useful for snapshotting perf state without a JSONL consumer,
//! and the body of the live monitor's `GET /metrics`.
//!
//! The output is exposition-format conformant: metric names are sanitised,
//! label values escaped (`\\`, `"`, `\n`), every family gets exactly one
//! `# HELP`/`# TYPE` pair even when samples come from several scopes, and
//! non-finite gauge values are skipped rather than printed as `NaN`.

use crate::{with_registry, Histogram, Registry, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::atomic::Ordering;

/// Map an internal dotted name (`backtest.day_score_ns`) onto a valid
/// Prometheus metric name (`rtgcn_backtest_day_score_ns`). The `rtgcn_`
/// prefix also guarantees the name never starts with a digit.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("rtgcn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format (backslash, quote, LF).
fn label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escape HELP text (backslash and LF — a raw newline would truncate the
/// comment and turn its tail into a bogus sample line).
fn help_text(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Render a label set (`{a="x",b="y"}`), empty string for no labels. Values
/// are escaped; names are trusted (all call sites use fixed label names).
fn label_set(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", label_value(v));
    }
    out.push('}');
    out
}

/// One metric family accumulated across scopes: exactly one `# HELP` and
/// `# TYPE` line, then all samples (exposition conformance forbids repeated
/// TYPE lines for the same family).
struct Family {
    kind: &'static str,
    help: String,
    /// `(label-set string, rendered value)` sample lines. For histograms
    /// the sample name varies (`_bucket`/`_sum`/`_count`), so each sample
    /// carries its own full suffix in the label string slot.
    samples: Vec<String>,
}

#[derive(Default)]
struct Families(BTreeMap<String, Family>);

impl Families {
    fn push(&mut self, family: &str, kind: &'static str, help: &str, line: String) {
        self.0
            .entry(family.to_string())
            .or_insert_with(|| Family { kind, help: help.to_string(), samples: Vec::new() })
            .samples
            .push(line);
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.0 {
            if fam.samples.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {name} {}", help_text(&fam.help));
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            for s in &fam.samples {
                out.push_str(s);
                out.push('\n');
            }
        }
        out
    }
}

/// Collect one registry's metrics into `fams`, labelling every sample with
/// `model="<label>"` when `model` is non-empty (the monitor's merged view
/// over concurrent model scopes).
fn collect_registry(r: &Registry, model: &str, fams: &mut Families) {
    let base: Vec<(&str, &str)> =
        if model.is_empty() { Vec::new() } else { vec![("model", model)] };
    for (name, c) in r.counters.lock().iter() {
        let v = c.load(Ordering::Relaxed);
        if v == 0 {
            continue;
        }
        let m = format!("{}_total", metric_name(name));
        let line = format!("{m}{} {v}", label_set(&base));
        fams.push(&m, "counter", &format!("telemetry counter `{name}`"), line);
    }
    for (name, h) in r.hists.lock().iter() {
        let total = h.count();
        if total == 0 {
            continue;
        }
        let m = metric_name(name);
        let help = format!("latency histogram `{name}` (ns)");
        let mut cumulative = 0u64;
        for i in 0..=HIST_BUCKETS {
            let n = h.buckets[i].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            if i < HIST_BUCKETS {
                let mut labels = base.clone();
                let bound = Histogram::bound(i).to_string();
                labels.push(("le", &bound));
                fams.push(&m, "histogram", &help, format!("{m}_bucket{} {cumulative}", label_set(&labels)));
            }
        }
        let mut inf = base.clone();
        inf.push(("le", "+Inf"));
        fams.push(&m, "histogram", &help, format!("{m}_bucket{} {total}", label_set(&inf)));
        fams.push(&m, "histogram", &help, format!("{m}_sum{} {}", label_set(&base), h.sum_ns.load(Ordering::Relaxed)));
        fams.push(&m, "histogram", &help, format!("{m}_count{} {total}", label_set(&base)));
        // Pre-computed p50/p95/p99 as a sibling gauge family — quantile
        // series may not share the histogram family name per the exposition
        // format, so they live under `<m>_quantile`.
        let qm = format!("{m}_quantile");
        let qhelp = format!("estimated quantiles of `{name}` (ns, bucket upper bounds)");
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let mut labels = base.clone();
            labels.push(("quantile", label));
            fams.push(&qm, "gauge", &qhelp, format!("{qm}{} {}", label_set(&labels), h.percentile(q)));
        }
    }
    {
        let spans = r.spans.lock();
        for (path, st) in spans.iter() {
            let mut labels = base.clone();
            labels.push(("path", path));
            let set = label_set(&labels);
            fams.push(
                "rtgcn_span_total_ns",
                "counter",
                "total nanoseconds recorded under a span path",
                format!("rtgcn_span_total_ns{set} {}", st.total_ns),
            );
            fams.push(
                "rtgcn_span_count",
                "counter",
                "completions recorded under a span path",
                format!("rtgcn_span_count{set} {}", st.count),
            );
        }
    }
    for (name, points) in r.series.lock().iter() {
        // Latest *finite* value: a NaN tail sample (degenerate fit) must not
        // print a `NaN` gauge line, and must not hide an earlier real value.
        let Some(last) = points.iter().rev().find(|p| p.value.is_finite()) else { continue };
        let m = metric_name(name);
        let line = format!("{m}{} {}", label_set(&base), last.value);
        fams.push(&m, "gauge", &format!("latest value of series `{name}`"), line);
    }
}

/// Process identity and build provenance: which binary produced this scrape.
fn collect_process(fams: &mut Families) {
    let labels =
        [("version", crate::build_version()), ("git_hash", crate::build_git_hash())];
    fams.push(
        "rtgcn_build_info",
        "gauge",
        "constant 1; version and git hash identify the build",
        format!("rtgcn_build_info{} 1", label_set(&labels)),
    );
    fams.push(
        "rtgcn_process_start_time_seconds",
        "gauge",
        "unix time the process started",
        format!("rtgcn_process_start_time_seconds {}", crate::process_start_unix_secs()),
    );
    let uptime = crate::process_uptime_secs();
    if uptime.is_finite() {
        fams.push(
            "rtgcn_process_uptime_seconds",
            "gauge",
            "seconds since process start",
            format!("rtgcn_process_uptime_seconds {uptime}"),
        );
    }
}

/// Render the calling thread's current-scope registry in the Prometheus
/// text exposition format:
///
/// - counters → `rtgcn_<name>_total` (TYPE `counter`);
/// - histograms → `rtgcn_<name>` with cumulative `_bucket{le="…"}` lines
///   (upper bounds in ns), `_sum` and `_count` (TYPE `histogram`), plus a
///   `rtgcn_<name>_quantile{quantile="…"}` gauge family for p50/p95/p99;
/// - span aggregates → `rtgcn_span_total_ns{path="…"}` and
///   `rtgcn_span_count{path="…"}`;
/// - series → a gauge holding the latest finite recorded value.
///
/// Zero-valued counters and empty sections are omitted, so the dump is empty
/// when nothing has been recorded.
pub fn render_prometheus() -> String {
    let mut fams = Families::default();
    with_registry(|r| collect_registry(r, "", &mut fams));
    fams.render()
}

/// Render *every* live scope — the root scope plus all in-flight
/// [`crate::ModelScope`] registries — merged into one exposition dump.
/// Model-scope samples carry a `model="…"` label (from the scope's `meta`
/// model event; unlabeled scopes render as `model="scope-<n>"` so two
/// anonymous scopes never collide into one series). Appends
/// `rtgcn_build_info` and process start/uptime gauges so a scrape
/// identifies its producer. This is the body of the monitor's `/metrics`.
pub fn render_prometheus_all() -> String {
    let mut fams = Families::default();
    for (i, (label, scope)) in crate::snapshot_scopes().into_iter().enumerate() {
        let model =
            if i == 0 { String::new() } else if label.is_empty() { format!("scope-{i}") } else { label };
        collect_registry(&scope.registry, &model, &mut fams);
    }
    collect_process(&mut fams);
    fams.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, gauge, record_ns, span, test_scope, Level, ModelScope};

    #[test]
    fn renders_all_four_sections() {
        let _g = test_scope(Level::Summary);
        count("tensor.matmul_calls", 3);
        record_ns("backtest.day_score_ns", 100);
        record_ns("backtest.day_score_ns", 100_000);
        gauge("fit.loss", 0, 0.5);
        gauge("fit.loss", 1, 0.25);
        drop(span("fit"));
        let text = render_prometheus();
        assert!(text.contains("# TYPE rtgcn_tensor_matmul_calls_total counter"), "{text}");
        assert!(text.contains("# HELP rtgcn_tensor_matmul_calls_total"), "{text}");
        assert!(text.contains("rtgcn_tensor_matmul_calls_total 3"), "{text}");
        assert!(text.contains("# TYPE rtgcn_backtest_day_score_ns histogram"), "{text}");
        assert!(text.contains("rtgcn_backtest_day_score_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("rtgcn_backtest_day_score_ns_count 2"), "{text}");
        assert!(text.contains("rtgcn_span_count{path=\"fit\"} 1"), "{text}");
        // Series render as a gauge holding the latest value.
        assert!(text.contains("# TYPE rtgcn_fit_loss gauge"), "{text}");
        assert!(text.contains("rtgcn_fit_loss 0.25"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sorted() {
        let _g = test_scope(Level::Summary);
        record_ns("h", 64); // first bucket
        record_ns("h", 64);
        record_ns("h", 8_192);
        let text = render_prometheus();
        assert!(text.contains("rtgcn_h_bucket{le=\"64\"} 2"), "{text}");
        assert!(text.contains("rtgcn_h_bucket{le=\"8192\"} 3"), "{text}");
        assert!(text.contains("rtgcn_h_sum 8320"), "{text}");
    }

    #[test]
    fn histograms_render_quantiles_as_sibling_gauge_family() {
        let _g = test_scope(Level::Summary);
        record_ns("q", 64);
        record_ns("q", 64);
        record_ns("q", 8_192);
        let text = render_prometheus();
        // Quantile series live in their own `<m>_quantile` gauge family —
        // `m{quantile=…}` under `# TYPE m histogram` is nonconforming.
        assert!(text.contains("# TYPE rtgcn_q_quantile gauge"), "{text}");
        assert!(text.contains("rtgcn_q_quantile{quantile=\"0.5\"} 64"), "{text}");
        assert!(text.contains("rtgcn_q_quantile{quantile=\"0.95\"} 8192"), "{text}");
        assert!(text.contains("rtgcn_q_quantile{quantile=\"0.99\"} 8192"), "{text}");
        assert!(!text.contains("rtgcn_q{quantile"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let _g = test_scope(Level::Summary);
        assert!(render_prometheus().is_empty());
    }

    #[test]
    fn non_finite_gauges_are_skipped_not_printed() {
        let _g = test_scope(Level::Summary);
        gauge("fit.nanloss", 0, 0.75);
        gauge("fit.nanloss", 1, f64::NAN);
        gauge("fit.allnan", 0, f64::NAN);
        gauge("fit.inf", 0, f64::INFINITY);
        let text = render_prometheus();
        // Latest finite value wins; all-NaN series disappear entirely.
        assert!(text.contains("rtgcn_fit_nanloss 0.75"), "{text}");
        assert!(!text.contains("rtgcn_fit_allnan"), "{text}");
        assert!(!text.contains("rtgcn_fit_inf"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let _g = test_scope(Level::Summary);
        drop(span("weird\"path\\seg"));
        let text = render_prometheus();
        assert!(text.contains(r#"path="weird\"path\\seg""#), "{text}");
    }

    #[test]
    fn all_scopes_render_merges_models_with_one_type_line_per_family() {
        let _g = test_scope(Level::Summary);
        count("merge.unit.root", 1);
        let scope = ModelScope::new();
        scope.emit(&crate::Event::meta("model", "RT-GCN (U)"));
        {
            let _e = scope.enter();
            count("merge.unit.shared", 5);
        }
        let scope2 = ModelScope::new();
        scope2.emit(&crate::Event::meta("model", "LSTM"));
        {
            let _e = scope2.enter();
            count("merge.unit.shared", 7);
        }
        let text = render_prometheus_all();
        assert!(text.contains("rtgcn_merge_unit_root_total 1"), "{text}");
        assert!(text.contains("rtgcn_merge_unit_shared_total{model=\"RT-GCN (U)\"} 5"), "{text}");
        assert!(text.contains("rtgcn_merge_unit_shared_total{model=\"LSTM\"} 7"), "{text}");
        // Exactly one TYPE line for the shared family across both scopes.
        let type_lines =
            text.lines().filter(|l| l.starts_with("# TYPE rtgcn_merge_unit_shared_total")).count();
        assert_eq!(type_lines, 1, "{text}");
        // Build identity rides along on the merged dump.
        assert!(text.contains("rtgcn_build_info{version=\""), "{text}");
        assert!(text.contains("rtgcn_process_start_time_seconds "), "{text}");
    }
}
