//! `rtgcn-telemetry`: a zero-dependency tracing + metrics layer for the
//! RT-GCN workspace (std + the in-repo `parking_lot`/`serde` shims only).
//!
//! Five primitives share one registry per *scope*:
//!
//! - **Spans** — hierarchical RAII timers. [`span`] pushes onto a
//!   thread-local stack; dropping the guard records `(count, total, min,
//!   max)` under the slash-joined path (`fit/epoch/relational`).
//!   [`debug_span`] is identical but only active at [`Level::Debug`], which
//!   is what the per-call tensor-kernel instrumentation uses so that
//!   `RTGCN_LOG=off`/`summary` keep hot loops cheap.
//! - **Counters** — named `u64`s ([`count`], or a cached [`Counter`]
//!   handle for hot paths).
//! - **Histograms** — fixed log-spaced bucket latency histograms
//!   ([`record_ns`]); percentiles are estimated as the upper bound of the
//!   bucket containing the target rank.
//! - **Series** — named per-epoch (or per-day) scalar time series recorded
//!   with [`gauge`]: each point is `(index, value)`, readable back in memory
//!   via [`series_points`] and streamed to the JSONL sink as
//!   `kind = "series"` events. The training-health monitor ([`health`])
//!   records its per-epoch diagnostics (loss components, gradient/weight
//!   norms) through this API.
//! - **Warnings** — [`warn`] prints to stderr and emits a JSONL event; used
//!   for degenerate-but-not-fatal conditions (zero-epoch fits, empty splits).
//!
//! Aggregated state can also be rendered as a Prometheus text-exposition
//! dump with [`render_prometheus`] (counters, histograms, span totals and
//! latest series values in one scrapeable string).
//!
//! # Scopes
//!
//! All of the free functions above resolve against the calling thread's
//! *current scope*: a `(registry, sink)` pair. By default every thread uses
//! the process-wide **root scope**, which is what serial harnesses and tests
//! see — the historical global-registry behaviour. A [`ModelScope`] is an
//! isolated scope a worker thread can [`ModelScope::enter`] for the duration
//! of one model's job, so concurrent models record into disjoint registries
//! and disjoint JSONL sinks instead of interleaving. Handles that hot paths
//! cache in `static`s ([`Counter`], returned by [`counter`]) re-resolve by
//! name on every operation, so one cached handle counts into whichever scope
//! the calling thread currently has entered.
//!
//! Two sinks per scope:
//!
//! - a human-readable **span-tree summary** rendered to stderr by
//!   [`print_summary`] (and automatically when the [`Telemetry`] guard from
//!   [`init_harness`] drops);
//! - a machine-readable **JSONL event stream** ([`Event`] per line) written
//!   through [`install_file_sink`] / [`install_memory_sink`].
//!
//! The level comes from `RTGCN_LOG=off|summary|debug` (default `off` for
//! library/test use; [`init_harness`] defaults to `summary` when the
//! variable is unset so experiment binaries are observable out of the box).

pub mod alloc;
pub mod health;
pub mod http;
mod prometheus;
pub mod spantree;
pub mod trace;

pub use prometheus::{render_prometheus, render_prometheus_all};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------- levels

/// Verbosity, ordered: `Off < Summary < Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// All telemetry disabled; spans/counters are no-ops.
    Off = 0,
    /// Coarse spans (epochs, phases, per-day scoring), counters, warnings.
    Summary = 1,
    /// Everything, including per-call kernel spans.
    Debug = 2,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "summary" | "1" | "info" => Some(Level::Summary),
            "debug" | "2" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Current level; reads `RTGCN_LOG` once and caches it in an atomic.
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        2 => Level::Debug,
        _ => init_level_from_env(Level::Off),
    }
}

fn init_level_from_env(default: Level) -> Level {
    let l = std::env::var("RTGCN_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(default);
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Force the level (tests, or programmatic override of `RTGCN_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

#[inline]
pub fn enabled(l: Level) -> bool {
    level() >= l
}

// ---------------------------------------------------------------- registry

#[derive(Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Bytes allocated on the recording thread while spans under this path
    /// were open (0 unless `RTGCN_ALLOC_STATS=1`; see [`alloc`]).
    alloc_bytes: u64,
    /// Bytes freed on the recording thread while spans under this path
    /// were open.
    freed_bytes: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64, alloc_bytes: u64, freed_bytes: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = if self.count == 1 { ns } else { self.min_ns.min(ns) };
        self.max_ns = self.max_ns.max(ns);
        self.alloc_bytes = self.alloc_bytes.saturating_add(alloc_bytes);
        self.freed_bytes = self.freed_bytes.saturating_add(freed_bytes);
    }
}

pub(crate) struct Registry {
    pub(crate) spans: Mutex<BTreeMap<String, SpanStat>>,
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    pub(crate) series: Mutex<BTreeMap<String, Vec<SeriesPoint>>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            spans: Mutex::new(BTreeMap::new()),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            series: Mutex::new(BTreeMap::new()),
        }
    }
}

// ---------------------------------------------------------------- scopes

/// One telemetry scope: a metric registry plus an optional JSONL sink.
pub(crate) struct ScopeInner {
    pub(crate) registry: Registry,
    sink: Mutex<Option<SinkTarget>>,
    /// Outstanding [`ScopeGuard`]s across all threads — the enter/exit
    /// balance the debug-build order/leak checker audits.
    active_enters: AtomicU64,
    /// Buffered Chrome-trace events for this scope (see [`trace`]).
    pub(crate) trace: Mutex<trace::TraceBuf>,
    /// `(harness, model)` labels captured from `meta` events; name the
    /// scope's trace/folded export files.
    pub(crate) labels: Mutex<(String, String)>,
}

impl ScopeInner {
    fn new() -> ScopeInner {
        ScopeInner {
            registry: Registry::new(),
            sink: Mutex::new(None),
            active_enters: AtomicU64::new(0),
            trace: Mutex::new(trace::TraceBuf::default()),
            labels: Mutex::new((String::new(), String::new())),
        }
    }
}

/// The process-wide default scope (the historical global registry/sink).
fn root_scope() -> &'static Arc<ScopeInner> {
    static ROOT: OnceLock<Arc<ScopeInner>> = OnceLock::new();
    ROOT.get_or_init(|| Arc::new(ScopeInner::new()))
}

// ------------------------------------------------------------- live scopes

/// Weak handles to every [`ModelScope`] ever created, pruned of dead scopes
/// on registration. The monitor server ([`http`]) walks this list to render
/// `/metrics` and `/spans` over *live* runs — registries of in-flight model
/// jobs, not just whatever scope the server thread happens to be in.
static LIVE_SCOPES: Mutex<Vec<Weak<ScopeInner>>> = Mutex::new(Vec::new());

fn register_scope(scope: &Arc<ScopeInner>) {
    let mut v = LIVE_SCOPES.lock();
    v.retain(|w| w.strong_count() > 0);
    v.push(Arc::downgrade(scope));
}

/// Every live model scope, in creation order (root scope not included).
pub(crate) fn live_scopes() -> Vec<Arc<ScopeInner>> {
    LIVE_SCOPES.lock().iter().filter_map(Weak::upgrade).collect()
}

/// `(model label, scope)` for the root scope plus every live model scope —
/// the snapshot surface the monitor endpoints render. The root scope comes
/// first with an empty label; model scopes carry the label captured from
/// their `meta` events (empty until the harness emits one).
pub(crate) fn snapshot_scopes() -> Vec<(String, Arc<ScopeInner>)> {
    let mut out = vec![(String::new(), Arc::clone(root_scope()))];
    for s in live_scopes() {
        let label = s.labels.lock().1.clone();
        out.push((label, s));
    }
    out
}

thread_local! {
    /// Stack of scopes this thread has entered; empty = root scope.
    static CURRENT_SCOPE: RefCell<Vec<Arc<ScopeInner>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` against the calling thread's current scope (root by default).
/// Tolerates TLS teardown (`try_with`): telemetry recorded from a thread's
/// destructors falls back to the root scope instead of panicking.
fn with_scope<R>(f: impl FnOnce(&ScopeInner) -> R) -> R {
    let current = CURRENT_SCOPE.try_with(|c| c.borrow().last().cloned()).ok().flatten();
    match current {
        Some(s) => f(&s),
        None => f(root_scope()),
    }
}

/// Crate-internal alias so sibling modules ([`trace`]) can reach the
/// current scope without re-exporting `ScopeInner` details.
pub(crate) fn with_scope_inner<R>(f: impl FnOnce(&ScopeInner) -> R) -> R {
    with_scope(f)
}

pub(crate) fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> R {
    with_scope(|s| f(&s.registry))
}

/// An isolated telemetry scope — its own registry and its own JSONL sink —
/// for running concurrent per-model jobs without interleaving metrics.
///
/// A worker thread makes the scope current with [`ModelScope::enter`]; every
/// span/counter/histogram/series/warn recorded on that thread until the
/// returned guard drops lands in this scope instead of the root scope. The
/// handle is `Clone` (cheap `Arc`) and `Send + Sync`, so the same scope can
/// be entered from several worker threads (e.g. two seeds of one model
/// running in parallel share one per-model registry and log file).
///
/// Call [`ModelScope::finish`] after the last job completes to flush the
/// aggregate span/counter/histogram events into the scope's sink and close
/// it — the per-model analogue of what the [`Telemetry`] guard does for the
/// root scope on drop.
#[derive(Clone)]
pub struct ModelScope {
    inner: Arc<ScopeInner>,
}

impl Default for ModelScope {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelScope {
    /// A fresh scope with an empty registry and no sink. The scope is
    /// registered with the process-wide live-scope list so the monitor
    /// server can snapshot it while jobs are still running.
    pub fn new() -> ModelScope {
        let inner = Arc::new(ScopeInner::new());
        register_scope(&inner);
        ModelScope { inner }
    }

    /// Route this scope's events to a JSONL file (parents are created).
    pub fn install_file_sink(&self, path: &Path) -> std::io::Result<()> {
        install_file_sink_for(&self.inner, path)
    }

    /// Route this scope's events to an in-memory buffer (tests).
    pub fn install_memory_sink(&self) {
        *self.inner.sink.lock() = Some(SinkTarget::Memory(Vec::new()));
    }

    /// Drain this scope's in-memory sink (empty for a file sink / no sink).
    pub fn drain_memory_sink(&self) -> Vec<String> {
        match self.inner.sink.lock().as_mut() {
            Some(SinkTarget::Memory(lines)) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Write one event directly to this scope's sink (run metadata headers).
    pub fn emit(&self, event: &Event) {
        emit_for(&self.inner, event);
    }

    /// Make this scope current on the calling thread until the guard drops.
    pub fn enter(&self) -> ScopeGuard {
        self.inner.active_enters.fetch_add(1, Ordering::AcqRel);
        CURRENT_SCOPE.with(|c| c.borrow_mut().push(Arc::clone(&self.inner)));
        ScopeGuard { entered: Arc::clone(&self.inner), _not_send: std::marker::PhantomData }
    }

    /// Flush this scope's aggregate events into its sink, then close the
    /// sink if it is a file (a memory sink stays installed so tests can
    /// still [`ModelScope::drain_memory_sink`] after finishing).
    ///
    /// In debug builds this audits the enter/exit balance first: a `finish`
    /// while some worker still holds a [`ScopeGuard`] means aggregates are
    /// being flushed mid-write, so a `telemetry.scope_leak` warn event lands
    /// in this scope's own sink (never a panic — the pool must keep
    /// draining).
    pub fn finish(&self) {
        if cfg!(debug_assertions) {
            let active = self.inner.active_enters.load(Ordering::Acquire);
            if active > 0 {
                let msg = format!(
                    "finish() called with {active} ScopeGuard(s) still active — a worker \
                     thread has not exited this scope, its metrics may be flushed mid-write"
                );
                if enabled(Level::Summary) {
                    eprintln!("[rtgcn-telemetry] WARN telemetry.scope_leak: {msg}");
                }
                emit_for(&self.inner, &Event::warn("telemetry.scope_leak", &msg));
                // Also scrapeable: the leak must show up as a counter in
                // `/metrics`, not only as a one-shot warn line.
                self.inner
                    .registry
                    .counters
                    .lock()
                    .entry("telemetry.scope_leak".to_string())
                    .or_default()
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        flush_aggregates_for(&self.inner);
        trace::write_exports_for(&self.inner);
        let mut sink = self.inner.sink.lock();
        if matches!(sink.as_ref(), Some(SinkTarget::File(_))) {
            if let Some(SinkTarget::File(mut w)) = sink.take() {
                let _ = w.flush();
            }
        }
    }
}

/// Returned by [`ModelScope::enter`]; restores the previous scope on drop.
/// `!Send` by construction — it must drop on the thread that entered.
pub struct ScopeGuard {
    /// The scope this guard entered — checked against what actually pops.
    entered: Arc<ScopeInner>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let popped = CURRENT_SCOPE.try_with(|c| c.borrow_mut().pop()).ok().flatten();
        // One decrement per guard, paired with the increment in `enter`.
        self.entered.active_enters.fetch_sub(1, Ordering::AcqRel);
        // Debug-build order check: guards must unwind LIFO. Dropping them
        // out of order silently mis-routes every metric recorded between
        // the two drops, so name the condition loudly — but never panic in
        // Drop (a panic here would abort if we are already unwinding).
        if cfg!(debug_assertions) {
            let in_order = matches!(&popped, Some(s) if Arc::ptr_eq(s, &self.entered));
            if !in_order {
                warn(
                    "telemetry.scope_order",
                    "ScopeGuard dropped out of LIFO order — metrics recorded on this \
                     thread may be attributed to the wrong model scope",
                );
            }
        }
    }
}

/// Clear the current scope's aggregated state (between per-model runs, and
/// in tests). Counters are zeroed in place rather than removed so that
/// previously observed names keep reporting 0 via [`counter_value`];
/// histogram and series entries are dropped. [`Counter`] handles re-resolve
/// by name per operation, so cached handles keep working across resets.
///
/// # Contract
///
/// `reset()` races with every other registry/sink operation on the same
/// scope: a test that calls it while another test is mid-assertion on the
/// root memory sink will see the other test's state vanish. Any code that
/// pairs `reset()` with [`install_memory_sink`]/[`set_level`] (i.e. every
/// telemetry-asserting test) must hold the process-wide [`test_lock`] for
/// the whole setup-act-assert sequence — [`test_scope`] bundles the common
/// case. Production callers ([`begin_model_run`], the parallel runner's
/// per-model [`ModelScope`]s) operate on disjoint scopes and are exempt.
pub fn reset() {
    with_registry(|r| {
        r.spans.lock().clear();
        for c in r.counters.lock().values() {
            c.store(0, Ordering::Relaxed);
        }
        r.hists.lock().clear();
        r.series.lock().clear();
    });
}

// ---------------------------------------------------------------- test lock

static TEST_GATE: Mutex<()> = Mutex::new(());

/// Guard returned by [`test_lock`]/[`test_scope`]; releases the process-wide
/// telemetry test mutex on drop.
pub struct TestGuard(#[allow(dead_code)] parking_lot::MutexGuard<'static, ()>);

/// Acquire the process-wide lock that serialises tests mutating global
/// telemetry state (level, root registry, root sink). See the contract on
/// [`reset`]. Every integration/unit test that calls [`reset`],
/// [`set_level`] or [`install_memory_sink`] must hold this guard for its
/// full duration; otherwise parallel test threads interleave installs and
/// drains and assertions read each other's events.
pub fn test_lock() -> TestGuard {
    TestGuard(TEST_GATE.lock())
}

/// [`test_lock`] plus the standard test preamble: set `level`, clear the
/// root registry, route root events to a fresh (drained) memory sink.
pub fn test_scope(level: Level) -> TestGuard {
    let guard = test_lock();
    set_level(level);
    reset();
    install_memory_sink();
    drain_memory_sink();
    guard
}

// ---------------------------------------------------------------- spans

thread_local! {
    /// Stack of active span paths on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    path: String,
    start: Instant,
    /// Thread-local allocation counter snapshots at open (0 when the
    /// tracking allocator is disabled; see [`alloc`]).
    alloc0: u64,
    freed0: u64,
}

/// RAII span timer. Created by [`span`]/[`debug_span`]; records into the
/// current scope's registry on drop. Inactive guards (level too low) cost
/// one atomic load and carry no clock read.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    const INACTIVE: SpanGuard = SpanGuard(None);

    fn open(name: &str) -> SpanGuard {
        let path = SPAN_STACK
            .try_with(|s| {
                let mut s = s.borrow_mut();
                let path = match s.last() {
                    Some(parent) => format!("{parent}/{name}"),
                    None => name.to_string(),
                };
                s.push(path.clone());
                path
            })
            // TLS teardown: record as a root span without a stack frame.
            .unwrap_or_else(|_| name.to_string());
        let (alloc0, freed0) =
            if alloc::tracking_enabled() { alloc::thread_counters() } else { (0, 0) };
        trace::record_begin(&path);
        SpanGuard(Some(ActiveSpan { path, start: Instant::now(), alloc0, freed0 }))
    }

    /// Elapsed time so far (zero for inactive guards).
    pub fn elapsed(&self) -> Duration {
        self.0.as_ref().map(|a| a.start.elapsed()).unwrap_or(Duration::ZERO)
    }

    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(ActiveSpan { path, start, alloc0, freed0 }) = self.0.take() else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let (alloc_bytes, freed_bytes) = if alloc::tracking_enabled() {
            let (a1, f1) = alloc::thread_counters();
            (a1.wrapping_sub(alloc0), f1.wrapping_sub(freed0))
        } else {
            (0, 0)
        };
        // This drop also runs during unwind (`catch_unwind` pool jobs): the
        // elapsed time must still land in the registry, the trace `E` event
        // must still close its `B`, and the stack must never be left with a
        // stale frame — hence `try_with` (no panic across TLS teardown) and
        // the out-of-order-tolerant pop below.
        let _ = SPAN_STACK.try_with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own frame; tolerate out-of-order drops defensively.
            if s.last() == Some(&path) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|p| p == &path) {
                s.remove(pos);
            }
        });
        trace::record_end(&path);
        with_registry(|r| {
            r.spans.lock().entry(path.clone()).or_default().record(ns, alloc_bytes, freed_bytes)
        });
        if enabled(Level::Debug) {
            emit(&Event::span(&path, 1, ns));
        }
    }
}

/// Open a span, active at `Summary` and above.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled(Level::Summary) {
        SpanGuard::open(name)
    } else {
        SpanGuard::INACTIVE
    }
}

/// Open a span that is only active at `Debug` (per-call kernel timing).
#[inline]
pub fn debug_span(name: &str) -> SpanGuard {
    if enabled(Level::Debug) {
        SpanGuard::open(name)
    } else {
        SpanGuard::INACTIVE
    }
}

// ---------------------------------------------------------------- counters

/// Cached handle to a named counter; cheap to clone and `inc` from hot
/// loops. The handle stores the *name* and resolves it against the calling
/// thread's current scope on every operation, so a handle cached in a
/// `static` at a kernel call site counts into whichever [`ModelScope`] the
/// thread has entered (and into the root scope otherwise).
#[derive(Clone)]
pub struct Counter {
    name: Arc<str>,
}

impl Counter {
    #[inline]
    pub fn inc(&self, n: u64) {
        if enabled(Level::Summary) {
            with_registry(|r| {
                let mut map = r.counters.lock();
                match map.get(&*self.name) {
                    Some(c) => {
                        c.fetch_add(n, Ordering::Relaxed);
                    }
                    None => {
                        map.insert(self.name.to_string(), Arc::new(AtomicU64::new(n)));
                    }
                }
            });
        }
    }

    /// Current value in the calling thread's scope (0 if never touched).
    pub fn get(&self) -> u64 {
        counter_value(&self.name)
    }
}

/// Look up (or create) the named counter in the current scope.
pub fn counter(name: &str) -> Counter {
    with_registry(|r| {
        r.counters.lock().entry(name.to_string()).or_default();
    });
    Counter { name: Arc::from(name) }
}

/// One-shot increment; prefer a cached [`Counter`] in hot paths.
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled(Level::Summary) {
        with_registry(|r| {
            let mut map = r.counters.lock();
            match map.get(name) {
                Some(c) => {
                    c.fetch_add(n, Ordering::Relaxed);
                }
                None => {
                    map.insert(name.to_string(), Arc::new(AtomicU64::new(n)));
                }
            }
        });
    }
}

/// Level-gate-free increment, the counter analogue of [`warn`]: failure
/// signals (dropped trace events, journal write failures, scope leaks)
/// must stay scrapeable via the monitor's `/metrics` even at `Level::Off`.
/// Use [`count`] for ordinary volume metrics.
pub fn count_always(name: &str, n: u64) {
    with_registry(|r| {
        let mut map = r.counters.lock();
        match map.get(name) {
            Some(c) => {
                c.fetch_add(n, Ordering::Relaxed);
            }
            None => {
                map.insert(name.to_string(), Arc::new(AtomicU64::new(n)));
            }
        }
    });
}

/// Read a counter's current value (0 if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| {
        r.counters.lock().get(name).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    })
}

// ---------------------------------------------------------------- histograms

/// Number of log-spaced buckets: bounds are `FIRST_BOUND_NS << i`, plus a
/// final catch-all at `u64::MAX`.
pub(crate) const HIST_BUCKETS: usize = 40;
const FIRST_BOUND_NS: u64 = 64;

/// Fixed-bucket latency histogram. Bucket `i` counts samples with
/// `ns <= FIRST_BOUND_NS << i`; percentile estimates return the upper bound
/// of the bucket holding the target rank (≤ 2× overestimate by design).
pub struct Histogram {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS + 1],
    count: AtomicU64,
    pub(crate) sum_ns: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Upper bound (ns) of bucket `i`.
    pub(crate) fn bound(i: usize) -> u64 {
        if i >= HIST_BUCKETS {
            u64::MAX
        } else {
            FIRST_BOUND_NS << i
        }
    }

    fn bucket_index(ns: u64) -> usize {
        (0..HIST_BUCKETS).find(|&i| ns <= Self::bound(i)).unwrap_or(HIST_BUCKETS)
    }

    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Estimated `q`-quantile in ns. `q` is clamped into `[0, 1]` (so
    /// `q = -3.0` behaves like `q = 0.0` and `q = 7.0` like `q = 1.0`);
    /// `q = NaN` and empty histograms return 0 rather than panicking or
    /// picking a garbage bucket.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 || q.is_nan() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..=HIST_BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bound(i);
            }
        }
        Self::bound(HIST_BUCKETS)
    }
}

/// Look up (or create) the named histogram in the current scope.
pub fn histogram(name: &str) -> Arc<Histogram> {
    with_registry(|r| {
        let mut map = r.hists.lock();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    })
}

/// Record one latency sample into the named histogram (`Summary` and above).
#[inline]
pub fn record_ns(name: &str, ns: u64) {
    if enabled(Level::Summary) {
        histogram(name).record(ns);
    }
}

// ---------------------------------------------------------------- series

/// One `(index, value)` sample of a named scalar time series. `index` is the
/// caller's ordinal (epoch number, test-day number); values are whatever
/// scalar the series tracks (loss, gradient norm, cumulative IRR, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    pub index: u64,
    pub value: f64,
}

/// Record one point of the named scalar series (`Summary` and above): the
/// point is appended to the current scope's registry (readable with
/// [`series_points`]) and streamed to the scope's JSONL sink as a `series`
/// event with `count = index` and `value = value`.
pub fn gauge(name: &str, index: u64, value: f64) {
    if !enabled(Level::Summary) {
        return;
    }
    with_registry(|r| {
        r.series
            .lock()
            .entry(name.to_string())
            .or_default()
            .push(SeriesPoint { index, value });
    });
    emit(&Event::series(name, index, value));
}

/// Read back every recorded point of the named series (empty if unknown).
/// Points appear in recording order; [`gauge`] callers that use a
/// monotonically increasing `index` (the health monitor's epoch counter)
/// therefore read back monotone indices.
pub fn series_points(name: &str) -> Vec<SeriesPoint> {
    with_registry(|r| r.series.lock().get(name).cloned().unwrap_or_default())
}

/// Names of all series recorded since the last [`reset`], sorted.
pub fn series_names() -> Vec<String> {
    with_registry(|r| r.series.lock().keys().cloned().collect())
}

// ---------------------------------------------------------------- events

/// One JSONL line. A flat schema (no `Option`s, no nesting) keeps every
/// consumer — including `grep`/`jq` one-liners — trivial:
///
/// - `kind = "span"`: `count` completions totalling `total_ns` under `name`.
/// - `kind = "counter"`: counter `name` reached `count`.
/// - `kind = "hist"`: histogram `name` with `count` samples and
///   `p50_ns`/`p95_ns`/`p99_ns` estimates (`total_ns` carries the sum).
/// - `kind = "series"`: one point of scalar series `name` — ordinal in
///   `count`, sample in `value` (NaN serialises as `null`).
/// - `kind = "health"`: end-of-fit training-health record — model in `name`,
///   verdict in `msg`, epochs observed in `count`, final loss in `value`.
/// - `kind = "warn"`: warning code in `name`, text in `msg`.
/// - `kind = "meta"`: run metadata (harness/model labels) in `name`/`msg`.
///
/// Unused numeric fields are 0, unused strings empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub ts_ms: u64,
    pub kind: String,
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub value: f64,
    pub msg: String,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

impl Event {
    fn blank(kind: &str, name: &str) -> Event {
        Event {
            ts_ms: now_ms(),
            kind: kind.to_string(),
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            value: 0.0,
            msg: String::new(),
        }
    }

    pub fn span(path: &str, count: u64, total_ns: u64) -> Event {
        Event { count, total_ns, ..Event::blank("span", path) }
    }

    pub fn counter(name: &str, value: u64) -> Event {
        Event { count: value, ..Event::blank("counter", name) }
    }

    pub fn series(name: &str, index: u64, value: f64) -> Event {
        Event { count: index, value, ..Event::blank("series", name) }
    }

    pub fn warn(code: &str, msg: &str) -> Event {
        Event { msg: msg.to_string(), ..Event::blank("warn", code) }
    }

    pub fn meta(key: &str, value: &str) -> Event {
        Event { msg: value.to_string(), ..Event::blank("meta", key) }
    }
}

enum SinkTarget {
    File(BufWriter<std::fs::File>),
    Memory(Vec<String>),
}

fn install_file_sink_for(scope: &ScopeInner, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let file = std::fs::File::create(path)?;
    *scope.sink.lock() = Some(SinkTarget::File(BufWriter::new(file)));
    Ok(())
}

fn close_sink_for(scope: &ScopeInner) {
    if let Some(SinkTarget::File(mut w)) = scope.sink.lock().take() {
        let _ = w.flush();
    }
}

fn emit_for(scope: &ScopeInner, event: &Event) {
    // `meta` events carry the run labels the trace exporters name files by.
    if event.kind == "meta" {
        let mut labels = scope.labels.lock();
        match event.name.as_str() {
            "harness" => labels.0 = event.msg.clone(),
            "model" => labels.1 = event.msg.clone(),
            _ => {}
        }
    }
    let Ok(line) = serde_json::to_string(event) else { return };
    match scope.sink.lock().as_mut() {
        Some(SinkTarget::File(w)) => {
            let _ = writeln!(w, "{line}");
        }
        Some(SinkTarget::Memory(lines)) => lines.push(line),
        None => {}
    }
}

/// Fold the scope's span-level allocation attribution into `alloc.*`
/// counters (set, not add — flushes and summaries may both publish). Root
/// spans already transitively contain their children's bytes, so summing
/// them gives the scope's total without double counting; the peak is the
/// process-global high-water mark (see the caveats on [`alloc`]).
fn publish_alloc_counters_for(scope: &ScopeInner) {
    if !alloc::tracking_enabled() {
        return;
    }
    let (allocated, freed) = {
        let spans = scope.registry.spans.lock();
        spans
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .fold((0u64, 0u64), |(a, f), (_, st)| {
                (a.saturating_add(st.alloc_bytes), f.saturating_add(st.freed_bytes))
            })
    };
    let mut counters = scope.registry.counters.lock();
    for (name, value) in [
        ("alloc.bytes_allocated", allocated),
        ("alloc.bytes_freed", freed),
        ("alloc.peak_live_bytes", alloc::peak_live_bytes()),
    ] {
        counters.entry(name.to_string()).or_default().store(value, Ordering::Relaxed);
    }
}

fn flush_aggregates_for(scope: &ScopeInner) {
    publish_alloc_counters_for(scope);
    let r = &scope.registry;
    for (path, st) in r.spans.lock().iter() {
        emit_for(scope, &Event::span(path, st.count, st.total_ns));
    }
    for (name, c) in r.counters.lock().iter() {
        let v = c.load(Ordering::Relaxed);
        if v > 0 {
            emit_for(scope, &Event::counter(name, v));
        }
    }
    for (name, h) in r.hists.lock().iter() {
        emit_for(
            scope,
            &Event {
                count: h.count(),
                total_ns: h.sum_ns.load(Ordering::Relaxed),
                p50_ns: h.percentile(0.50),
                p95_ns: h.percentile(0.95),
                p99_ns: h.percentile(0.99),
                ..Event::blank("hist", name)
            },
        );
    }
    if let Some(SinkTarget::File(w)) = scope.sink.lock().as_mut() {
        let _ = w.flush();
    }
}

/// Route the current scope's events to a JSONL file (parent directories are
/// created). Replaces any previously installed sink on that scope.
pub fn install_file_sink(path: &Path) -> std::io::Result<()> {
    with_scope(|s| install_file_sink_for(s, path))
}

/// Route the current scope's events to an in-memory buffer (tests).
pub fn install_memory_sink() {
    with_scope(|s| {
        *s.sink.lock() = Some(SinkTarget::Memory(Vec::new()));
    });
}

/// Drain the current scope's in-memory sink (empty for a file sink/no sink).
pub fn drain_memory_sink() -> Vec<String> {
    with_scope(|s| match s.sink.lock().as_mut() {
        Some(SinkTarget::Memory(lines)) => std::mem::take(lines),
        _ => Vec::new(),
    })
}

/// Flush and remove the current scope's sink.
pub fn close_sink() {
    with_scope(close_sink_for);
}

/// Write one event to the current scope's sink (no-op without a sink).
pub fn emit(event: &Event) {
    with_scope(|s| emit_for(s, event));
}

/// Emit a warning: stderr at `Summary`+, and always a JSONL event so
/// degenerate conditions are machine-visible even at `off`.
pub fn warn(code: &str, msg: &str) {
    if enabled(Level::Summary) {
        eprintln!("[rtgcn-telemetry] WARN {code}: {msg}");
    }
    emit(&Event::warn(code, msg));
}

/// Write aggregate span/counter/histogram events to the current scope's
/// sink and flush it. Called between per-model runs and by the [`Telemetry`]
/// guard on drop.
pub fn flush_aggregates() {
    with_scope(flush_aggregates_for);
}

// ---------------------------------------------------------------- summary

fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Human-readable byte count (`1.5KiB`, `2.3MiB`, ...).
fn format_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b < KIB {
        format!("{b}B")
    } else if b < KIB * KIB {
        format!("{:.1}KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    }
}

/// Render the current scope's aggregated span tree (hierarchical, with per
/// node **self time** = total minus direct children), counters and
/// histogram percentiles as human-readable text (what [`print_summary`]
/// writes to stderr). With `RTGCN_ALLOC_STATS=1` each span row gains a
/// self-allocated-bytes column.
pub fn render_summary() -> String {
    with_scope(publish_alloc_counters_for);
    let aggs = spantree::snapshot_current();
    let show_alloc = alloc::tracking_enabled();
    with_registry(|r| {
        let mut out = String::new();
        if !aggs.is_empty() {
            out.push_str(if show_alloc {
                "span tree (total | self | mean | count | self-alloc):\n"
            } else {
                "span tree (total | self | mean | count):\n"
            });
            for a in &aggs {
                let mean = a.total_ns.checked_div(a.count).unwrap_or(0);
                out.push_str(&format!(
                    "{:indent$}{:<28} {:>9} | {:>9} | {:>9} | {}",
                    "",
                    a.name(),
                    format_ns(a.total_ns),
                    format_ns(a.self_ns),
                    format_ns(mean),
                    a.count,
                    indent = 2 * a.depth(),
                ));
                if show_alloc {
                    out.push_str(&format!(" | {}", format_bytes(a.self_alloc_bytes)));
                }
                out.push('\n');
            }
        }
        let counters = r.counters.lock();
        let live: Vec<_> = counters
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .filter(|&(_, v)| v > 0)
            .collect();
        drop(counters);
        if !live.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in live {
                out.push_str(&format!("  {name:<34} {v}\n"));
            }
        }
        let hists = r.hists.lock();
        if !hists.is_empty() {
            out.push_str("latency histograms (p50 / p95 / p99 | n):\n");
            for (name, h) in hists.iter() {
                out.push_str(&format!(
                    "  {name:<34} {} / {} / {} | {}\n",
                    format_ns(h.percentile(0.50)),
                    format_ns(h.percentile(0.95)),
                    format_ns(h.percentile(0.99)),
                    h.count(),
                ));
            }
        }
        drop(hists);
        let series = r.series.lock();
        if !series.is_empty() {
            out.push_str("series (last | n):\n");
            for (name, points) in series.iter() {
                let last = points.last().map(|p| p.value).unwrap_or(f64::NAN);
                out.push_str(&format!("  {name:<34} {last:.6} | {}\n", points.len()));
            }
        }
        out
    })
}

/// Write [`render_summary`] to stderr (no-op when there is nothing to show).
pub fn print_summary() {
    let s = render_summary();
    if !s.is_empty() {
        eprintln!("─── rtgcn-telemetry summary ───");
        eprint!("{s}");
        eprintln!("───────────────────────────────");
    }
}

// ---------------------------------------------------------------- build info

/// `(unix start seconds, monotonic start)` of this process, captured on
/// first use. [`init_harness`] touches it early so the value approximates
/// true process start; scrapes read it for `rtgcn_process_start_time_seconds`
/// and the uptime gauge.
fn process_start() -> &'static (u64, Instant) {
    static START: OnceLock<(u64, Instant)> = OnceLock::new();
    START.get_or_init(|| (now_ms() / 1000, Instant::now()))
}

/// Unix timestamp (seconds) this process started, best effort.
pub fn process_start_unix_secs() -> u64 {
    process_start().0
}

/// Seconds since [`process_start_unix_secs`] was first captured.
pub fn process_uptime_secs() -> f64 {
    process_start().1.elapsed().as_secs_f64()
}

/// Crate version baked into the binary (`CARGO_PKG_VERSION`).
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Short git hash captured at build time by `build.rs` (`"unknown"` when
/// the build ran outside a git checkout).
pub fn build_git_hash() -> &'static str {
    option_env!("RTGCN_GIT_HASH").unwrap_or("unknown")
}

// ---------------------------------------------------------------- harness init

/// RAII handle returned by [`init_harness`]: on drop, flushes aggregate
/// events to the JSONL sink and (at `Summary`+) prints the span-tree summary
/// to stderr.
pub struct Telemetry {
    _private: (),
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        // Stop serving before the final flush so a scrape racing harness
        // exit never reads a half-flushed registry.
        http::shutdown_monitor();
        flush_aggregates();
        if enabled(Level::Summary) {
            print_summary();
        }
        // Export any trace/folded profile the final scope still buffers
        // (serial harnesses: the last model's spans live in the root scope).
        with_scope(trace::write_exports_for);
        close_sink();
    }
}

/// Sanitise a harness/model label into a filename fragment.
pub fn sanitize_label(label: &str) -> String {
    let mut out: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c.to_ascii_lowercase() } else { '-' })
        .collect();
    while out.contains("--") {
        out = out.replace("--", "-");
    }
    out.trim_matches('-').to_string()
}

/// JSONL path for one (harness, model) run: `<dir>/run-<harness>-<model>.jsonl`.
pub fn run_log_path(dir: &Path, harness: &str, model: &str) -> PathBuf {
    dir.join(format!("run-{}-{}.jsonl", sanitize_label(harness), sanitize_label(model)))
}

/// Initialise telemetry for an experiment binary: resolves the level from
/// `RTGCN_LOG` (defaulting to `Summary` rather than `Off` — harnesses are
/// observable unless explicitly silenced), installs a JSONL file sink at
/// `<log_dir>/run-<harness>.jsonl`, and emits a `meta` event naming the
/// harness. Returns the guard that flushes + prints on drop.
pub fn init_harness(harness: &str, log_dir: &Path) -> Telemetry {
    if LEVEL.load(Ordering::Relaxed) == LEVEL_UNSET {
        init_level_from_env(Level::Summary);
    }
    alloc::init_from_env();
    trace::init_from_env();
    let _ = process_start();
    let path = log_dir.join(format!("run-{}.jsonl", sanitize_label(harness)));
    if let Err(e) = install_file_sink(&path) {
        eprintln!("[rtgcn-telemetry] cannot open JSONL sink {}: {e}", path.display());
    }
    emit(&Event::meta("harness", harness));
    // Live observability: RTGCN_MONITOR=<addr> starts the read-only HTTP
    // monitor for the duration of the harness (shut down when this guard
    // drops).
    http::start_monitor_from_env();
    Telemetry { _private: () }
}

/// Swap the current scope's JSONL sink to a per-model file
/// (`run-<harness>-<model>.jsonl`), flushing the aggregates gathered so far
/// into the previous sink and resetting the registry so each model's stats
/// stand alone. This is the *serial* per-model scope used by harnesses that
/// run one model at a time on the main thread; concurrent runners use one
/// [`ModelScope`] per model instead.
pub fn begin_model_run(log_dir: &Path, harness: &str, model: &str) {
    flush_aggregates();
    // Export the previous model's trace before `reset` clears its spans.
    with_scope(trace::write_exports_for);
    reset();
    let path = run_log_path(log_dir, harness, model);
    if let Err(e) = install_file_sink(&path) {
        eprintln!("[rtgcn-telemetry] cannot open JSONL sink {}: {e}", path.display());
    }
    emit(&Event::meta("harness", harness));
    emit(&Event::meta("model", model));
}

/// Test-only seeded slowdown for the perf gate (`RTGCN_PERF_CANARY_NS`):
/// a hot kernel (`Tape::spmm_csr`) sleeps this many nanoseconds per call,
/// so `run_experiments.sh --verify-perf` can prove end to end that a real
/// kernel regression both fails the threshold diff *and* is attributed to
/// the right span path. 0 (the default, env unset/unparseable) disables it.
pub fn perf_canary_ns() -> u64 {
    static CANARY: OnceLock<u64> = OnceLock::new();
    *CANARY.get_or_init(|| {
        std::env::var("RTGCN_PERF_CANARY_NS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("summary"), Some(Level::Summary));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn sanitized_labels_are_filename_safe() {
        assert_eq!(sanitize_label("RT-GCN (T)"), "rt-gcn-t");
        assert_eq!(sanitize_label("Rank_LSTM"), "rank_lstm");
        assert_eq!(
            run_log_path(Path::new("results/logs"), "table4_baselines", "RT-GCN (U)"),
            PathBuf::from("results/logs/run-table4_baselines-rt-gcn-u.jsonl")
        );
    }

    #[test]
    fn histogram_bucketing_is_monotone() {
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(64), 0);
        assert_eq!(Histogram::bucket_index(65), 1);
        assert!(Histogram::bucket_index(u64::MAX) == HIST_BUCKETS);
        for i in 0..HIST_BUCKETS {
            assert!(Histogram::bound(i) < Histogram::bound(i + 1));
        }
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn entered_scope_isolates_metrics_from_root() {
        let _g = test_scope(Level::Summary);
        count("scope.unit.root", 1);
        let scope = ModelScope::new();
        scope.install_memory_sink();
        {
            let _e = scope.enter();
            count("scope.unit.inner", 5);
            gauge("scope.unit.series", 0, 1.5);
            assert_eq!(counter_value("scope.unit.inner"), 5);
            // The root counter is invisible from inside the scope.
            assert_eq!(counter_value("scope.unit.root"), 0);
        }
        // Back on the root scope: inner metrics stayed in the model scope.
        assert_eq!(counter_value("scope.unit.inner"), 0);
        assert_eq!(counter_value("scope.unit.root"), 1);
        scope.finish();
        let lines = scope.drain_memory_sink();
        assert!(lines.iter().any(|l| l.contains("scope.unit.inner")), "{lines:?}");
        assert!(!lines.iter().any(|l| l.contains("scope.unit.root")), "{lines:?}");
    }

    #[test]
    fn cached_counter_handle_follows_the_current_scope() {
        let _g = test_scope(Level::Summary);
        let handle = counter("scope.unit.cached");
        handle.inc(2);
        let scope = ModelScope::new();
        {
            let _e = scope.enter();
            handle.inc(40);
            assert_eq!(handle.get(), 40);
        }
        assert_eq!(handle.get(), 2);
    }

    #[test]
    fn scope_enter_is_reentrant_across_threads() {
        let _g = test_scope(Level::Summary);
        let scope = ModelScope::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = scope.clone();
                std::thread::spawn(move || {
                    let _e = s.enter();
                    for _ in 0..100 {
                        count("scope.unit.shared", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let _e = scope.enter();
        assert_eq!(counter_value("scope.unit.shared"), 400);
    }
}
