//! On-disk profiling exporters, gated by `RTGCN_TRACE=<dir>`:
//!
//! - **Chrome Trace Event JSON** — `trace-<harness>-<model>.json`, a
//!   `{"traceEvents": [...]}` object of `B`/`E` duration events (timestamps
//!   in µs from a process-global monotonic epoch, one `tid` lane per OS
//!   thread, so the PR 5 worker-pool threads land in separate lanes).
//!   Loads directly in Perfetto / `chrome://tracing`.
//! - **Collapsed-stack ("folded") text** — `folded-<harness>-<model>.txt`,
//!   one `seg;seg;seg <self-µs>` line per span path, the input format of
//!   `flamegraph.pl` and inferno. Self times come from
//!   [`crate::spantree`], so a parent that only waits on children gets no
//!   line of its own.
//!
//! Every [`ScopeInner`](crate) carries its own bounded trace buffer and its
//! own `harness`/`model` labels (captured from the `meta` events the
//! harness emits), so concurrent [`ModelScope`](crate::ModelScope)s export
//! to disjoint files. Files are written when a scope finishes
//! ([`crate::ModelScope::finish`], [`crate::begin_model_run`], or the
//! [`crate::Telemetry`] guard dropping).
//!
//! With `RTGCN_TRACE` unset, recording costs one relaxed atomic load per
//! span open/close.

use crate::{sanitize_label, spantree, ScopeInner};
use parking_lot::Mutex;
use std::cell::Cell;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// --------------------------------------------------------------- activation

const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_UNSET: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Read `RTGCN_TRACE` once and activate the exporters if it names a
/// directory. Called by [`crate::init_harness`] and lazily by the first
/// span; [`set_trace_dir`] overrides either way.
pub fn init_from_env() -> bool {
    match std::env::var("RTGCN_TRACE") {
        Ok(d) if !d.trim().is_empty() => {
            set_trace_dir(Some(PathBuf::from(d.trim())));
            true
        }
        _ => {
            set_trace_dir(None);
            false
        }
    }
}

/// Programmatically set (or clear) the trace output directory. Tests use
/// this instead of the env var; hold [`crate::test_lock`] around it.
pub fn set_trace_dir(dir: Option<PathBuf>) {
    let mut d = DIR.lock();
    STATE.store(if dir.is_some() { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    *d = dir;
}

/// Fast check: is trace recording active?
#[inline]
pub(crate) fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

fn trace_dir() -> Option<PathBuf> {
    DIR.lock().clone()
}

// --------------------------------------------------------------- recording

/// Process-global monotonic epoch all trace timestamps are relative to.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's trace lane id (0 = not yet assigned).
    static LANE: Cell<u64> = const { Cell::new(0) };
}

/// Stable per-OS-thread lane id (Chrome `tid`), assigned on first use.
pub(crate) fn thread_lane() -> u64 {
    LANE.try_with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
    .unwrap_or(0)
}

#[derive(Clone)]
pub(crate) struct TraceEvent {
    /// `b'B'` (begin) or `b'E'` (end).
    pub ph: u8,
    pub ts_ns: u64,
    pub tid: u64,
    pub path: String,
}

/// Per-scope bounded event buffer.
#[derive(Default)]
pub(crate) struct TraceBuf {
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
}

/// Hard cap per scope: a 3-epoch profiled run emits O(10^5) span events;
/// the cap only exists to bound a runaway debug-level loop.
const MAX_EVENTS_PER_SCOPE: usize = 2_000_000;

/// Test override for [`MAX_EVENTS_PER_SCOPE`] (0 = use the default).
/// Overflow is otherwise unreachable in a unit test's lifetime.
static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

#[doc(hidden)]
pub fn set_max_events_per_scope_for_tests(cap: usize) {
    CAP_OVERRIDE.store(cap, Ordering::SeqCst);
}

fn max_events_per_scope() -> usize {
    match CAP_OVERRIDE.load(Ordering::SeqCst) {
        0 => MAX_EVENTS_PER_SCOPE,
        n => n,
    }
}

fn record(ph: u8, path: &str) {
    if !active() {
        return;
    }
    let ts_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let tid = thread_lane();
    crate::with_scope_inner(|scope| {
        let mut buf = scope.trace.lock();
        if buf.events.len() >= max_events_per_scope() {
            buf.dropped += 1;
            // Also a scrapeable counter: a live /metrics scrape must show
            // the overflow, not just the post-hoc stderr warning.
            scope
                .registry
                .counters
                .lock()
                .entry("trace.dropped_events".to_string())
                .or_default()
                .fetch_add(1, Ordering::Relaxed);
        } else {
            buf.events.push(TraceEvent { ph, ts_ns, tid, path: path.to_string() });
        }
    });
}

/// Record a span-begin event under the current scope.
#[inline]
pub(crate) fn record_begin(path: &str) {
    record(b'B', path);
}

/// Record a span-end event under the current scope. Runs from
/// `SpanGuard::drop`, including during unwind, so panicking jobs still
/// close their `B` events.
#[inline]
pub(crate) fn record_end(path: &str) {
    record(b'E', path);
}

// --------------------------------------------------------------- exporters

fn file_base(harness: &str, model: &str) -> String {
    let h = if harness.is_empty() { "run".to_string() } else { sanitize_label(harness) };
    if model.is_empty() {
        h
    } else {
        format!("{h}-{}", sanitize_label(model))
    }
}

/// JSON-escape a string via the vendored serde_json (returns the quoted
/// form, e.g. `"fit/epoch"`).
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"\"".to_string())
}

/// Render a trace buffer as a Chrome Trace Event JSON object.
pub(crate) fn render_chrome(buf: &TraceBuf) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push_str(&s);
        out.push('\n');
        *first = false;
    };
    // One metadata event names each lane so Perfetto shows readable rows.
    let mut tids: Vec<u64> = buf.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"thread-{tid}\"}}}}"
            ),
            &mut first,
        );
    }
    for e in &buf.events {
        let leaf = e.path.rsplit('/').next().unwrap_or(&e.path);
        push(
            format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\
                 \"tid\":{},\"args\":{{\"path\":{}}}}}",
                json_str(leaf),
                e.ph as char,
                e.ts_ns / 1_000,
                e.tid,
                json_str(&e.path),
            ),
            &mut first,
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render span aggregates in the collapsed-stack format: one
/// `seg;seg;seg <self-µs>` line per path with non-zero self time, sorted by
/// path. `flamegraph.pl` / inferno consume this unmodified.
pub fn render_folded(aggs: &[spantree::SpanAgg]) -> String {
    let mut out = String::new();
    for a in aggs {
        let us = a.self_ns / 1_000;
        if us == 0 {
            continue;
        }
        out.push_str(&a.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Parse collapsed-stack text back into `(slash-path, self-µs)` rows —
/// the inverse of [`render_folded`] (used by the round-trip tests and any
/// downstream tool that wants to re-aggregate a folded file). Lines that do
/// not end in a whitespace-separated integer are skipped.
pub fn parse_folded(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter_map(|line| {
            let (stack, value) = line.rsplit_once(' ')?;
            let value: u64 = value.trim().parse().ok()?;
            if stack.is_empty() {
                return None;
            }
            Some((stack.replace(';', "/"), value))
        })
        .collect()
}

/// Write this scope's trace buffer and folded self-time profile to the
/// trace directory, if tracing is active. Consumes (and clears) the
/// scope's buffer; no-op when nothing was recorded.
pub(crate) fn write_exports_for(scope: &ScopeInner) {
    if !active() {
        return;
    }
    let Some(dir) = trace_dir() else { return };
    let buf = std::mem::take(&mut *scope.trace.lock());
    let rows: Vec<(String, u64, u64, u64, u64)> = {
        let spans = scope.registry.spans.lock();
        spans
            .iter()
            .map(|(p, st)| (p.clone(), st.count, st.total_ns, st.alloc_bytes, st.freed_bytes))
            .collect()
    };
    if buf.events.is_empty() && rows.is_empty() {
        return;
    }
    let (harness, model) = {
        let l = scope.labels.lock();
        (l.0.clone(), l.1.clone())
    };
    let base = file_base(&harness, &model);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[rtgcn-telemetry] cannot create trace dir {}: {e}", dir.display());
        return;
    }
    if buf.dropped > 0 && crate::enabled(crate::Level::Summary) {
        eprintln!(
            "[rtgcn-telemetry] trace buffer for {base} overflowed: {} event(s) dropped",
            buf.dropped
        );
    }
    let trace_path = dir.join(format!("trace-{base}.json"));
    match std::fs::File::create(&trace_path) {
        Ok(f) => {
            let mut w = BufWriter::new(f);
            let _ = w.write_all(render_chrome(&buf).as_bytes());
            let _ = w.flush();
        }
        Err(e) => eprintln!("[rtgcn-telemetry] cannot write {}: {e}", trace_path.display()),
    }
    let aggs = spantree::aggregate(rows);
    let folded = render_folded(&aggs);
    if !folded.is_empty() {
        let folded_path = dir.join(format!("folded-{base}.txt"));
        if let Err(e) = std::fs::write(&folded_path, folded) {
            eprintln!("[rtgcn-telemetry] cannot write {}: {e}", folded_path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(path: &str, self_ns: u64) -> spantree::SpanAgg {
        spantree::SpanAgg {
            path: path.to_string(),
            count: 1,
            total_ns: self_ns,
            self_ns,
            alloc_bytes: 0,
            freed_bytes: 0,
            self_alloc_bytes: 0,
        }
    }

    #[test]
    fn folded_lines_use_semicolons_and_microseconds() {
        let text = render_folded(&[agg("fit/epoch/loss", 2_500_000), agg("fit", 999)]);
        // 999ns rounds down to 0µs and is skipped; 2.5ms → 2500µs.
        assert_eq!(text, "fit;epoch;loss 2500\n");
    }

    #[test]
    fn parse_folded_inverts_render() {
        let rows = parse_folded("a;b 10\nc 7\nmalformed\nalso bad x\n");
        assert_eq!(rows, vec![("a/b".to_string(), 10), ("c".to_string(), 7)]);
    }

    #[test]
    fn chrome_render_is_valid_json_with_matched_pairs() {
        let buf = TraceBuf {
            events: vec![
                TraceEvent { ph: b'B', ts_ns: 1_000, tid: 1, path: "fit".into() },
                TraceEvent { ph: b'B', ts_ns: 2_000, tid: 1, path: "fit/epoch".into() },
                TraceEvent { ph: b'E', ts_ns: 3_000, tid: 1, path: "fit/epoch".into() },
                TraceEvent { ph: b'E', ts_ns: 4_000, tid: 1, path: "fit".into() },
            ],
            dropped: 0,
        };
        let text = render_chrome(&buf);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let obj = v.as_map().expect("expected object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .expect("expected traceEvents array");
        // 1 thread_name metadata event + 4 span events.
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn file_base_handles_missing_labels() {
        assert_eq!(file_base("", ""), "run");
        assert_eq!(file_base("table4_baselines", ""), "table4_baselines");
        assert_eq!(file_base("table4_baselines", "RT-GCN (T)"), "table4_baselines-rt-gcn-t");
    }
}
