//! Hand-rolled HTTP/1.1 observability server — the `rtgcn-monitor`
//! transport. Zero dependencies: a [`std::net::TcpListener`] accept loop on
//! its own thread, a bounded in-flight connection budget, per-connection
//! read/write timeouts, and graceful shutdown on harness exit (the
//! [`crate::Telemetry`] guard's drop).
//!
//! Any harness starts it by setting `RTGCN_MONITOR=<addr>` (e.g.
//! `127.0.0.1:9184`, or `127.0.0.1:0` for an ephemeral port — the bound
//! address is printed to stderr). Built-in endpoints:
//!
//! | endpoint   | body |
//! |------------|------|
//! | `/metrics` | Prometheus text over **all live scopes** ([`crate::render_prometheus_all`]) |
//! | `/healthz` | 200/503 + JSON from the sticky per-model health board |
//! | `/spans`   | top-self-time span table as JSON, per live scope |
//!
//! Extra read-only routes (the bench runner's `/runs`) plug in via
//! [`register_route`] *before* the server starts.
//!
//! The server is read-only and unauthenticated: bind it to loopback
//! (anything else logs a `monitor.non_loopback` warning).

use crate::{health, spantree};
use parking_lot::Mutex;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Request head (request line + headers) larger than this gets a 431.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// POST body larger than this gets a 413 (a feature window for a
/// paper-scale market is well under this).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-connection read/write timeout; a stalled client is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Connections handled concurrently; excess get an immediate 503.
const MAX_INFLIGHT: usize = 8;
/// Rows returned by `/spans` (merged across scopes, by self time).
const SPANS_TOP_K: usize = 100;

// ---------------------------------------------------------------- response

/// A fully-materialised HTTP response; handlers build one of these and the
/// connection thread serialises it (status line, `Content-Length`,
/// `Connection: close`).
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    pub fn json(status: u16, value: &Value) -> Response {
        let body = serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string());
        Response { status, content_type: "application/json", body }
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        // Client may have gone away mid-write; nothing useful to do about it.
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(self.body.as_bytes());
        let _ = stream.flush();
    }
}

// --------------------------------------------------------------- requests

/// A parsed request handed to registered handlers: method (`GET` or
/// `POST` — everything else is rejected before dispatch), the path with
/// the query string stripped, the raw query string, and the request body
/// (empty for GET; bounded by [`MAX_BODY_BYTES`] for POST).
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: String,
    pub body: Vec<u8>,
}

impl Request {
    /// A bodyless GET (handy for tests and internal dispatch).
    pub fn get(path: &str) -> Request {
        let (path, query) = split_target(path);
        Request { method: "GET".to_string(), path, query, body: Vec::new() }
    }

    /// First value of `name` in the query string (`k=v` pairs joined by
    /// `&`; no percent-decoding — route values here are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// The body as UTF-8, or `None` when it isn't valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Split a request target into `(path, query)` at the first `?`.
fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    }
}

// ---------------------------------------------------------------- routes

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

static ROUTES: Mutex<Vec<(String, Handler)>> = Mutex::new(Vec::new());

/// Register (or replace) a route. The handler receives the parsed
/// [`Request`] (method, query string, POST body) and owns its method
/// policy — return a 405 yourself for methods you don't serve. Call before
/// the server starts — typically before `init_harness` runs — though
/// routes added later are picked up too (the table is consulted per
/// request). Paths are matched exactly after the query string is stripped.
pub fn register_route(path: &str, handler: impl Fn(&Request) -> Response + Send + Sync + 'static) {
    let mut routes = ROUTES.lock();
    routes.retain(|(p, _)| p != path);
    routes.push((path.to_string(), Arc::new(handler)));
}

fn dispatch(req: &Request) -> Response {
    let handler: Option<Handler> = {
        let routes = ROUTES.lock();
        routes.iter().find(|(p, _)| p == &req.path).map(|(_, h)| Arc::clone(h))
    };
    let run = |f: &dyn Fn() -> Response| {
        // A panicking handler must not kill the connection thread silently:
        // surface it as a 500 so scrapers see the failure.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .unwrap_or_else(|_| Response::text(500, "handler panicked\n"))
    };
    if let Some(h) = handler {
        return run(&|| h(req));
    }
    // Built-in observability endpoints are read-only: GET only.
    if req.method != "GET" {
        return Response::text(405, "built-in endpoints are GET-only\n");
    }
    match req.path.as_str() {
        "/metrics" => run(&handle_metrics),
        "/healthz" => run(&handle_healthz),
        "/spans" => run(&handle_spans),
        _ => Response::text(404, "not found; try /metrics /healthz /runs /spans\n"),
    }
}

// ------------------------------------------------------- built-in handlers

fn handle_metrics() -> Response {
    Response {
        status: 200,
        // Prometheus text exposition format version marker.
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: crate::render_prometheus_all(),
    }
}

fn handle_healthz() -> Response {
    let worst = health::board_worst();
    let status = if worst == health::HealthVerdict::Diverged { 503 } else { 200 };
    let models: Vec<(String, Value)> = health::board_snapshot()
        .into_iter()
        .map(|(m, v)| (m, Value::Str(v.as_str().to_string())))
        .collect();
    let body = Value::Map(vec![
        ("status".to_string(), Value::Str(worst.as_str().to_string())),
        ("models".to_string(), Value::Map(models)),
    ]);
    Response::json(status, &body)
}

fn handle_spans() -> Response {
    // Merge every live scope's span tree; rows carry the scope's model
    // label so concurrent jobs stay distinguishable.
    let mut rows: Vec<(String, spantree::SpanAgg)> = Vec::new();
    for (i, (label, scope)) in crate::snapshot_scopes().into_iter().enumerate() {
        let model = if i == 0 { "root".to_string() } else if label.is_empty() { format!("scope-{i}") } else { label };
        let raw: Vec<(String, u64, u64, u64, u64)> = {
            let spans = scope.registry.spans.lock();
            spans
                .iter()
                .map(|(p, st)| (p.clone(), st.count, st.total_ns, st.alloc_bytes, st.freed_bytes))
                .collect()
        };
        for agg in spantree::aggregate(raw) {
            rows.push((model.clone(), agg));
        }
    }
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.1.path.cmp(&b.1.path)));
    rows.truncate(SPANS_TOP_K);
    let out: Vec<Value> = rows
        .into_iter()
        .map(|(model, a)| {
            Value::Map(vec![
                ("model".to_string(), Value::Str(model)),
                ("path".to_string(), Value::Str(a.path)),
                ("count".to_string(), Value::U64(a.count)),
                ("total_ns".to_string(), Value::U64(a.total_ns)),
                ("self_ns".to_string(), Value::U64(a.self_ns)),
            ])
        })
        .collect();
    Response::json(200, &Value::Seq(out))
}

// ---------------------------------------------------------------- parsing

enum HeadError {
    /// Head exceeded [`MAX_HEAD_BYTES`] without terminating.
    TooLarge,
    /// Read error, timeout, or the client hung up before `\r\n\r\n`.
    Disconnect,
}

/// Read the request head (through the blank line). Returns the head text
/// plus any body bytes that arrived in the same reads (handed to
/// [`read_body`]).
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HeadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let (end, term_len) = loop {
        if let Some((at, len)) = find_terminator(&buf) {
            break (at, len);
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HeadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HeadError::Disconnect),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(HeadError::Disconnect),
        }
    };
    let leftover = buf.split_off(end + term_len);
    let head = String::from_utf8(buf).map_err(|_| HeadError::Disconnect)?;
    Ok((head, leftover))
}

/// Position and length of the head terminator (`\r\n\r\n`, tolerant of a
/// bare `\n\n`).
fn find_terminator(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| (p, 2)))
}

/// Parse the request line into `(method, target)`; anything that is not
/// `METHOD SP TARGET SP HTTP/…` is an error.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || method.is_empty() || !version.starts_with("HTTP/") {
        return None;
    }
    if !target.starts_with('/') {
        return None;
    }
    Some((method.to_string(), target.to_string()))
}

/// The declared `Content-Length`, if any. `Err` on an unparseable value.
fn content_length(head: &str) -> Result<usize, ()> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value.trim().parse::<usize>().map_err(|_| ());
        }
    }
    Ok(0)
}

/// Read the remaining `want` body bytes beyond what `leftover` already
/// holds. `None` on disconnect/timeout mid-body.
fn read_body(stream: &mut TcpStream, mut leftover: Vec<u8>, want: usize) -> Option<Vec<u8>> {
    let mut chunk = [0u8; 4096];
    while leftover.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => leftover.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    leftover.truncate(want);
    Some(leftover)
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (head, leftover) = match read_head(&mut stream) {
        Ok(h) => h,
        Err(HeadError::TooLarge) => {
            Response::text(431, "request head exceeds 8 KiB\n").write_to(&mut stream);
            return;
        }
        // Premature disconnect / timeout: no one is listening for a reply.
        Err(HeadError::Disconnect) => return,
    };
    let resp = match parse_request_line(&head) {
        Some((method, target)) if method == "GET" || method == "POST" => {
            let (path, query) = split_target(&target);
            match content_length(&head) {
                Err(()) => Response::text(400, "unparseable Content-Length\n"),
                Ok(len) if len > MAX_BODY_BYTES => {
                    Response::text(413, "request body exceeds 4 MiB\n")
                }
                Ok(len) => match read_body(&mut stream, leftover, len) {
                    // Disconnect mid-body: nobody is listening for a reply.
                    None => return,
                    Some(body) => dispatch(&Request { method, path, query, body }),
                },
            }
        }
        Some(_) => Response::text(405, "only GET and POST are supported\n"),
        None => Response::text(400, "malformed request line\n"),
    };
    resp.write_to(&mut stream);
}

// ---------------------------------------------------------------- server

/// A running monitor server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins the accept thread; in-flight connection
/// threads finish on their own (each is bounded by [`IO_TIMEOUT`]).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks an ephemeral port — see
    /// [`Server::local_addr`]) and start the accept loop on a named thread.
    pub fn start(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let inflight = Arc::new(AtomicUsize::new(0));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("rtgcn-monitor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    if inflight.load(Ordering::SeqCst) >= MAX_INFLIGHT {
                        // Shed load in the accept thread itself rather than
                        // queueing unboundedly behind slow scrapers.
                        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                        Response::text(503, "too many concurrent connections\n")
                            .write_to(&mut stream);
                        continue;
                    }
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let conn_inflight = Arc::clone(&inflight);
                    let spawned = std::thread::Builder::new()
                        .name("rtgcn-monitor-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream);
                            conn_inflight.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        inflight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?;
        Ok(Server { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept loop, join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(t) = self.accept_thread.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // `accept` blocks; a throwaway self-connection wakes it so it can
        // observe the stop flag. If the connect fails the listener is
        // already dead and the thread exits on the accept error.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        let _ = t.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// --------------------------------------------------------- global monitor

static MONITOR: Mutex<Option<Server>> = Mutex::new(None);

/// Start the process-wide monitor if `RTGCN_MONITOR=<addr>` is set (no-op
/// otherwise, or if one is already running). Called from
/// [`crate::init_harness`], so every harness bin gets it for free.
pub fn start_monitor_from_env() {
    let Ok(addr) = std::env::var("RTGCN_MONITOR") else { return };
    let addr = addr.trim().to_string();
    if addr.is_empty() {
        return;
    }
    start_monitor(&addr);
}

/// Start the process-wide monitor on `addr`; idempotent. A bind failure is
/// a warning, never fatal — experiments must not die because a port is
/// taken.
pub fn start_monitor(addr: &str) {
    let mut slot = MONITOR.lock();
    if slot.is_some() {
        return;
    }
    match Server::start(addr) {
        Ok(server) => {
            let local = server.local_addr();
            eprintln!("[rtgcn-monitor] listening on http://{local} (metrics, healthz, runs, spans)");
            if !local.ip().is_loopback() {
                crate::warn(
                    "monitor.non_loopback",
                    "RTGCN_MONITOR is bound to a non-loopback address; the monitor is \
                     read-only but unauthenticated",
                );
            }
            *slot = Some(server);
        }
        Err(e) => {
            crate::warn("monitor.bind_failed", &format!("cannot bind RTGCN_MONITOR={addr}: {e}"));
        }
    }
}

/// The bound address of the running process-wide monitor, if any. This is
/// how tests and the smoke binary resolve `127.0.0.1:0`.
pub fn monitor_addr() -> Option<SocketAddr> {
    MONITOR.lock().as_ref().map(Server::local_addr)
}

/// Stop the process-wide monitor (no-op when not running). Called from the
/// [`crate::Telemetry`] guard's drop so the port is released before the
/// process exits.
pub fn shutdown_monitor() {
    let server = MONITOR.lock().take();
    if let Some(s) = server {
        s.shutdown();
    }
}
