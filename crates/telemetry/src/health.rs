//! Training-health monitoring: per-epoch numerical diagnostics for fit
//! loops.
//!
//! Pairwise ranking losses on small per-day batches are known to train
//! unstably (Feng et al.'s RSR, STHAN-SR); a diverging fit is invisible in
//! the final MRR/IRR numbers until the whole harness has run. The
//! [`HealthMonitor`] watches every optimisation step for the numbers that
//! go wrong first — the loss components (MSE vs. pairwise vs. L2 of the
//! paper's Eq. 7/9 objective), the pre-clip global gradient L2 norm, the
//! weight norm, and NaN/Inf sentinels — aggregates them per epoch, records
//! them as `fit.*` series through [`gauge`](crate::gauge), and distils a
//! [`HealthVerdict`].
//!
//! Wiring pattern (RT-GCN's fit and every trainable baseline):
//!
//! ```text
//! let mut monitor = HealthMonitor::new(&name, HealthConfig::default());
//! for epoch {
//!     for day { monitor.observe_step(loss, mse, rank, grad_norm); }
//!     monitor.end_epoch(store.value_norm(), lambda);
//!     if monitor.should_abort() { break; }
//! }
//! let (verdict, per_epoch) = monitor.finish();
//! ```

use crate::{emit, gauge, warn, Event};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Distilled training health, worst-seen-so-far across epochs.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum HealthVerdict {
    /// All epochs numerically sound.
    #[default]
    Healthy,
    /// Suspicious but finite: gradient norm above the warn threshold, or
    /// the epoch loss regressed well past its best.
    Warn,
    /// NaN/Inf observed, gradient norm past the diverge threshold, or the
    /// loss exploded relative to its best epoch.
    Diverged,
}

impl HealthVerdict {
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthVerdict::Healthy => "Healthy",
            HealthVerdict::Warn => "Warn",
            HealthVerdict::Diverged => "Diverged",
        }
    }
}

impl std::fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------- board

/// Process-wide sticky health board: worst verdict seen per model name,
/// across every [`HealthMonitor`] in the process (all scopes, all seeds of
/// a model merge into one row). The monitor server's `/healthz` endpoint
/// reads this — a live 503 the moment any in-flight fit diverges, instead
/// of a post-hoc surprise in the final table.
static BOARD: Mutex<BTreeMap<String, HealthVerdict>> = Mutex::new(BTreeMap::new());

/// Record (sticky-max) a model's verdict on the process-wide board.
pub fn board_record(model: &str, verdict: HealthVerdict) {
    let mut b = BOARD.lock();
    match b.get_mut(model) {
        Some(cur) => *cur = (*cur).max(verdict),
        None => {
            b.insert(model.to_string(), verdict);
        }
    }
}

/// Every model the board has seen, with its worst verdict, sorted by name.
pub fn board_snapshot() -> Vec<(String, HealthVerdict)> {
    BOARD.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Worst verdict across all models (Healthy for an empty board).
pub fn board_worst() -> HealthVerdict {
    BOARD.lock().values().copied().max().unwrap_or(HealthVerdict::Healthy)
}

/// Clear the board (tests; hold [`crate::test_lock`]).
pub fn board_reset() {
    BOARD.lock().clear();
}

/// Thresholds for [`HealthMonitor`]. The defaults are deliberately loose —
/// an order of magnitude beyond anything a converging fit produces on the
/// paper's data scales — so a `Warn`/`Diverged` verdict means something.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Pre-clip global gradient L2 norm above which an epoch is `Warn`.
    pub grad_warn: f32,
    /// Pre-clip global gradient L2 norm above which an epoch is `Diverged`.
    pub grad_diverge: f32,
    /// Mean epoch loss above `loss_warn_factor × best epoch loss` → `Warn`.
    pub loss_warn_factor: f32,
    /// Mean epoch loss above `loss_diverge_factor × best` → `Diverged`.
    pub loss_diverge_factor: f32,
    /// When true, [`HealthMonitor::should_abort`] returns true once the
    /// verdict reaches `Diverged`, letting the fit loop stop early instead
    /// of burning the remaining epochs on NaNs.
    pub abort_on_divergence: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            grad_warn: 1e3,
            grad_diverge: 1e6,
            loss_warn_factor: 10.0,
            loss_diverge_factor: 1e3,
            abort_on_divergence: false,
        }
    }
}

/// Per-epoch aggregate diagnostics (what `FitReport::epoch_health` carries).
/// Loss fields are epoch means; `grad_norm` is the maximum pre-clip global
/// L2 norm over the epoch's steps (the spike is the signal — a mean hides
/// one exploding day among hundreds); `l2` is `λ·‖θ‖²`, the regularisation
/// term of Eq. 9 that the optimiser applies as weight decay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochHealth {
    pub epoch: u64,
    pub loss: f32,
    pub mse: f32,
    pub rank: f32,
    pub l2: f32,
    pub grad_norm: f32,
    pub weight_norm: f32,
    /// Steps in this epoch whose loss or gradient norm was NaN/Inf.
    pub non_finite_steps: u64,
}

/// Accumulates per-step diagnostics into per-epoch records and a verdict.
pub struct HealthMonitor {
    model: String,
    cfg: HealthConfig,
    epoch: u64,
    steps: u64,
    sum_loss: f64,
    sum_mse: f64,
    sum_rank: f64,
    max_grad: f32,
    non_finite_steps: u64,
    best_loss: f32,
    verdict: HealthVerdict,
    diverged_warned: bool,
    epochs: Vec<EpochHealth>,
}

impl HealthMonitor {
    pub fn new(model: &str, cfg: HealthConfig) -> Self {
        // An active fit shows on the health board immediately (as Healthy)
        // so `/healthz` lists every model that has started, not only those
        // that already closed an epoch.
        board_record(model, HealthVerdict::Healthy);
        HealthMonitor {
            model: model.to_string(),
            cfg,
            epoch: 0,
            steps: 0,
            sum_loss: 0.0,
            sum_mse: 0.0,
            sum_rank: 0.0,
            max_grad: 0.0,
            non_finite_steps: 0,
            best_loss: f32::INFINITY,
            verdict: HealthVerdict::Healthy,
            diverged_warned: false,
            epochs: Vec::new(),
        }
    }

    /// Record one optimisation step: total loss, its MSE and pairwise-rank
    /// components, and the pre-clip global gradient L2 norm. Models without
    /// a ranking term pass `rank = 0.0`.
    pub fn observe_step(&mut self, loss: f32, mse: f32, rank: f32, grad_norm: f32) {
        self.steps += 1;
        if !loss.is_finite() || !grad_norm.is_finite() {
            self.non_finite_steps += 1;
        }
        self.sum_loss += loss as f64;
        self.sum_mse += mse as f64;
        self.sum_rank += rank as f64;
        if grad_norm.is_finite() {
            self.max_grad = self.max_grad.max(grad_norm);
        }
    }

    /// Close the current epoch: aggregate the observed steps, record the
    /// `fit.*` series, re-evaluate the verdict and return it. `weight_norm`
    /// is the post-step global parameter L2 norm; `l2_lambda` is the λ of
    /// Eq. 9 (the L2 loss term is reported as `λ·‖θ‖²`).
    ///
    /// An epoch with zero observed steps (empty training split) records NaN
    /// diagnostics but does *not* count as divergence — there was no
    /// training to diverge; the fit loop separately warns `fit.empty_split`.
    pub fn end_epoch(&mut self, weight_norm: f32, l2_lambda: f32) -> HealthVerdict {
        let mean = |sum: f64, n: u64| {
            if n == 0 {
                f32::NAN
            } else {
                (sum / n as f64) as f32
            }
        };
        let record = EpochHealth {
            epoch: self.epoch,
            loss: mean(self.sum_loss, self.steps),
            mse: mean(self.sum_mse, self.steps),
            rank: mean(self.sum_rank, self.steps),
            l2: l2_lambda * weight_norm * weight_norm,
            grad_norm: if self.steps == 0 { f32::NAN } else { self.max_grad },
            weight_norm,
            non_finite_steps: self.non_finite_steps,
        };
        gauge("fit.loss", record.epoch, record.loss as f64);
        gauge("fit.loss.mse", record.epoch, record.mse as f64);
        gauge("fit.loss.rank", record.epoch, record.rank as f64);
        gauge("fit.loss.l2", record.epoch, record.l2 as f64);
        gauge("fit.grad_norm", record.epoch, record.grad_norm as f64);
        gauge("fit.weight_norm", record.epoch, record.weight_norm as f64);
        if crate::alloc::tracking_enabled() {
            // Per-epoch peak of live heap bytes (process-global — see the
            // caveats on `alloc`; meaningful per model with RTGCN_JOBS=1).
            gauge("mem.peak_bytes", record.epoch, crate::alloc::peak_live_bytes() as f64);
            crate::alloc::reset_peak();
        }
        if self.steps > 0 {
            let assessed = self.assess(&record);
            self.verdict = self.verdict.max(assessed);
            if record.loss.is_finite() && record.loss < self.best_loss {
                self.best_loss = record.loss;
            }
            if self.verdict == HealthVerdict::Diverged && !self.diverged_warned {
                self.diverged_warned = true;
                warn(
                    "fit.diverged",
                    &format!(
                        "{}: training diverged at epoch {} (loss {}, max grad norm {}, \
                         {} non-finite steps)",
                        self.model,
                        record.epoch,
                        record.loss,
                        record.grad_norm,
                        record.non_finite_steps
                    ),
                );
            }
        }
        board_record(&self.model, self.verdict);
        self.epochs.push(record);
        self.epoch += 1;
        self.steps = 0;
        self.sum_loss = 0.0;
        self.sum_mse = 0.0;
        self.sum_rank = 0.0;
        self.max_grad = 0.0;
        self.non_finite_steps = 0;
        self.verdict
    }

    fn assess(&self, e: &EpochHealth) -> HealthVerdict {
        if e.non_finite_steps > 0 || !e.loss.is_finite() || !e.weight_norm.is_finite() {
            return HealthVerdict::Diverged;
        }
        let mut v = HealthVerdict::Healthy;
        if e.grad_norm > self.cfg.grad_diverge {
            v = HealthVerdict::Diverged;
        } else if e.grad_norm > self.cfg.grad_warn {
            v = HealthVerdict::Warn;
        }
        if self.best_loss.is_finite() {
            // Floor the reference so a microscopic best epoch (loss ≈ 0)
            // does not turn ordinary noise into a 10× "regression".
            let floor = self.best_loss.max(1e-3);
            if e.loss > floor * self.cfg.loss_diverge_factor {
                v = v.max(HealthVerdict::Diverged);
            } else if e.loss > floor * self.cfg.loss_warn_factor {
                v = v.max(HealthVerdict::Warn);
            }
        }
        v
    }

    /// Whether the fit loop should stop now (divergence + opt-in abort).
    pub fn should_abort(&self) -> bool {
        self.cfg.abort_on_divergence && self.verdict == HealthVerdict::Diverged
    }

    /// Worst verdict seen so far.
    pub fn verdict(&self) -> HealthVerdict {
        self.verdict
    }

    /// Per-epoch records accumulated so far.
    pub fn epochs(&self) -> &[EpochHealth] {
        &self.epochs
    }

    /// Finish the fit: emit a `health` JSONL event (always, like warnings —
    /// verdicts must be machine-visible even at level `off`) and return the
    /// verdict plus the per-epoch records for the `FitReport`.
    pub fn finish(self) -> (HealthVerdict, Vec<EpochHealth>) {
        let final_loss = self.epochs.last().map(|e| e.loss as f64).unwrap_or(f64::NAN);
        emit(&Event {
            count: self.epochs.len() as u64,
            value: final_loss,
            msg: self.verdict.to_string(),
            ..Event::blank("health", &self.model)
        });
        (self.verdict, self.epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drain_memory_sink, series_points, test_scope, Level};

    #[test]
    fn converging_fit_is_healthy_and_records_series() {
        let _g = test_scope(Level::Summary);
        let mut m = HealthMonitor::new("unit", HealthConfig::default());
        for epoch in 0..3 {
            for _ in 0..4 {
                let loss = 1.0 / (epoch + 1) as f32;
                m.observe_step(loss, loss * 0.9, loss * 0.1, 2.0);
            }
            assert_eq!(m.end_epoch(3.0, 0.01), HealthVerdict::Healthy);
        }
        let (verdict, epochs) = m.finish();
        assert_eq!(verdict, HealthVerdict::Healthy);
        assert_eq!(epochs.len(), 3);
        assert!(epochs.iter().all(|e| e.loss.is_finite() && e.grad_norm.is_finite()));
        assert!((epochs[2].l2 - 0.01 * 9.0).abs() < 1e-6);
        let loss_series = series_points("fit.loss");
        assert_eq!(loss_series.len(), 3);
        assert!(loss_series.windows(2).all(|w| w[0].index < w[1].index));
        let events = drain_memory_sink().join("\n");
        assert!(events.contains("\"health\""), "missing health event: {events}");
        assert!(events.contains("Healthy"));
    }

    #[test]
    fn nan_loss_diverges_warns_once_and_aborts_when_opted_in() {
        let _g = test_scope(Level::Off); // warn events are emitted even at off
        let cfg = HealthConfig { abort_on_divergence: true, ..Default::default() };
        let mut m = HealthMonitor::new("unit", cfg);
        m.observe_step(0.5, 0.4, 0.1, 1.0);
        m.end_epoch(1.0, 0.01);
        assert!(!m.should_abort());
        m.observe_step(f32::NAN, f32::NAN, 0.0, 1.0);
        assert_eq!(m.end_epoch(1.0, 0.01), HealthVerdict::Diverged);
        assert!(m.should_abort());
        // Verdict is sticky and the warn fires exactly once.
        m.observe_step(0.5, 0.4, 0.1, 1.0);
        assert_eq!(m.end_epoch(1.0, 0.01), HealthVerdict::Diverged);
        let events = drain_memory_sink();
        let diverged: Vec<_> =
            events.iter().filter(|l| l.contains("fit.diverged")).collect();
        assert_eq!(diverged.len(), 1, "one fit.diverged warn expected: {events:?}");
    }

    #[test]
    fn gradient_thresholds_grade_warn_then_diverged() {
        let _g = test_scope(Level::Off);
        let mut m = HealthMonitor::new("unit", HealthConfig::default());
        m.observe_step(0.5, 0.5, 0.0, 5e3); // above grad_warn, below diverge
        assert_eq!(m.end_epoch(1.0, 0.0), HealthVerdict::Warn);
        m.observe_step(0.5, 0.5, 0.0, 5e6); // above grad_diverge
        assert_eq!(m.end_epoch(1.0, 0.0), HealthVerdict::Diverged);
    }

    #[test]
    fn loss_regression_relative_to_best_warns() {
        let _g = test_scope(Level::Off);
        let mut m = HealthMonitor::new("unit", HealthConfig::default());
        m.observe_step(0.1, 0.1, 0.0, 1.0);
        assert_eq!(m.end_epoch(1.0, 0.0), HealthVerdict::Healthy);
        m.observe_step(5.0, 5.0, 0.0, 1.0); // 50× the best epoch
        assert_eq!(m.end_epoch(1.0, 0.0), HealthVerdict::Warn);
    }

    #[test]
    fn empty_epoch_is_not_divergence() {
        let _g = test_scope(Level::Off);
        let mut m = HealthMonitor::new("unit", HealthConfig::default());
        let v = m.end_epoch(1.0, 0.01);
        assert_eq!(v, HealthVerdict::Healthy);
        assert!(m.epochs()[0].loss.is_nan());
        assert!(!m.should_abort());
    }
}
