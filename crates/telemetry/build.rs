//! Bakes the short git hash into the binary as `RTGCN_GIT_HASH`, so the
//! `rtgcn_build_info` metric identifies which build produced a scrape.
//! Builds outside a git checkout (or without git) fall back to "unknown".

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RTGCN_GIT_HASH={hash}");
    // Re-stamp when HEAD moves; harmless no-op outside a checkout.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
