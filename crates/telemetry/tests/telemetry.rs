//! Integration tests for the telemetry layer. All of these touch global
//! state (level, registry, sink), so each test holds the crate's exported
//! test lock — `tel::test_scope` — for its full duration; Rust runs
//! integration tests in threads within one process (see the contract on
//! `reset()`).

use rtgcn_telemetry as tel;
use std::time::Duration;

fn fresh(level: tel::Level) -> tel::TestGuard {
    tel::test_scope(level)
}

#[test]
fn span_nesting_builds_slash_paths() {
    let _g = fresh(tel::Level::Summary);
    {
        let _fit = tel::span("fit");
        for _ in 0..3 {
            let _epoch = tel::span("epoch");
            let _fwd = tel::span("forward");
        }
    }
    let summary = tel::render_summary();
    assert!(summary.contains("fit"), "missing root span:\n{summary}");
    // Nested paths render indented under their parents with per-path counts.
    assert!(summary.contains("epoch"), "missing nested span:\n{summary}");
    assert!(summary.contains("forward"), "missing doubly nested span:\n{summary}");
    assert!(summary.contains("| 3\n"), "epoch should have count 3:\n{summary}");
}

#[test]
fn span_timers_are_monotone_and_contain_children() {
    let _g = fresh(tel::Level::Summary);
    let outer_elapsed;
    {
        let outer = tel::span("outer");
        let before = outer.elapsed();
        {
            let _inner = tel::span("inner");
            std::thread::sleep(Duration::from_millis(5));
        }
        let after = outer.elapsed();
        assert!(after >= before, "span clock went backwards");
        assert!(after >= Duration::from_millis(5), "outer must contain inner sleep");
        outer_elapsed = after;
    }
    // A second reading from a fresh span also moves forward.
    let again = tel::span("outer2");
    std::thread::sleep(Duration::from_millis(1));
    assert!(again.elapsed() > Duration::ZERO);
    assert!(outer_elapsed >= Duration::from_millis(5));
}

#[test]
fn disabled_spans_are_inert() {
    let _g = fresh(tel::Level::Off);
    {
        let s = tel::span("never");
        assert!(!s.is_active());
        assert_eq!(s.elapsed(), Duration::ZERO);
    }
    tel::count("never.counter", 5);
    assert_eq!(tel::counter_value("never.counter"), 0);
    assert!(tel::render_summary().is_empty());
}

#[test]
fn debug_spans_only_fire_at_debug() {
    let _g = fresh(tel::Level::Summary);
    assert!(!tel::debug_span("kernel").is_active());
    tel::set_level(tel::Level::Debug);
    assert!(tel::debug_span("kernel").is_active());
}

#[test]
fn histogram_percentiles_on_known_inputs() {
    let _g = fresh(tel::Level::Summary);
    let h = tel::histogram("known");
    // 100 samples at exact bucket upper bounds: 90 fast (64ns), 9 medium
    // (8192ns), 1 slow (1048576ns) → p50 fast, p95 medium, p99 medium,
    // p99.5+ slow.
    for _ in 0..90 {
        h.record(64);
    }
    for _ in 0..9 {
        h.record(8_192);
    }
    h.record(1_048_576);
    assert_eq!(h.count(), 100);
    assert_eq!(h.percentile(0.50), 64);
    assert_eq!(h.percentile(0.90), 64);
    assert_eq!(h.percentile(0.95), 8_192);
    assert_eq!(h.percentile(0.99), 8_192);
    assert_eq!(h.percentile(1.0), 1_048_576);
    let mean = h.mean_ns();
    assert!(mean > 64 && mean < 1_048_576, "mean {mean} out of range");
}

#[test]
fn histogram_empty_and_single_sample() {
    let _g = fresh(tel::Level::Summary);
    let h = tel::histogram("edge");
    assert_eq!(h.percentile(0.99), 0);
    h.record(1);
    assert_eq!(h.percentile(0.0), 64); // clamped to rank 1 → first bucket bound
    assert_eq!(h.percentile(1.0), 64);
}

#[test]
fn percentile_is_robust_to_degenerate_q() {
    let _g = fresh(tel::Level::Summary);
    let h = tel::histogram("degenerate");
    // Empty histogram: every q, including NaN, yields 0.
    for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
        assert_eq!(h.percentile(q), 0, "empty histogram must return 0 for q={q}");
    }
    h.record(64);
    h.record(8_192);
    assert_eq!(h.percentile(f64::NAN), 0, "NaN q must not pick a garbage bucket");
    // Out-of-range q clamps to the endpoints.
    assert_eq!(h.percentile(-1.0), h.percentile(0.0));
    assert_eq!(h.percentile(2.0), h.percentile(1.0));
    assert_eq!(h.percentile(0.0), 64);
    assert_eq!(h.percentile(1.0), 8_192);
}

#[test]
fn gauge_series_record_read_back_and_stream() {
    let _g = fresh(tel::Level::Summary);
    tel::gauge("fit.loss", 0, 1.5);
    tel::gauge("fit.loss", 1, 0.75);
    tel::gauge("fit.grad_norm", 0, 10.0);
    let pts = tel::series_points("fit.loss");
    assert_eq!(pts.len(), 2);
    assert_eq!(pts[0], tel::SeriesPoint { index: 0, value: 1.5 });
    assert_eq!(pts[1], tel::SeriesPoint { index: 1, value: 0.75 });
    assert_eq!(tel::series_names(), vec!["fit.grad_norm".to_string(), "fit.loss".to_string()]);
    assert!(tel::series_points("unknown").is_empty());
    // Each point streams immediately as a series event with count = index.
    let lines = tel::drain_memory_sink();
    let events: Vec<tel::Event> =
        lines.iter().map(|l| serde_json::from_str(l).unwrap()).collect();
    let fit_loss: Vec<_> =
        events.iter().filter(|e| e.kind == "series" && e.name == "fit.loss").collect();
    assert_eq!(fit_loss.len(), 2);
    assert_eq!(fit_loss[1].count, 1);
    assert_eq!(fit_loss[1].value, 0.75);
    // reset() clears series state like every other aggregate.
    tel::reset();
    assert!(tel::series_points("fit.loss").is_empty());
}

#[test]
fn gauges_are_inert_at_level_off() {
    let _g = fresh(tel::Level::Off);
    tel::gauge("quiet", 0, 1.0);
    assert!(tel::series_points("quiet").is_empty());
    assert!(tel::drain_memory_sink().is_empty());
}

#[test]
fn counters_are_atomic_under_crossbeam_threads() {
    let _g = fresh(tel::Level::Summary);
    let c = tel::counter("parallel.hits");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    crossbeam::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move |_| {
                for _ in 0..PER_THREAD {
                    c.inc(1);
                }
            });
        }
    })
    .expect("counter threads panicked");
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(tel::counter_value("parallel.hits"), THREADS as u64 * PER_THREAD);
}

#[test]
fn jsonl_events_roundtrip_through_serde_json() {
    let _g = fresh(tel::Level::Summary);
    tel::warn("test.code", "something degenerate");
    tel::count("c", 3);
    tel::record_ns("h", 100);
    tel::record_ns("h", 200_000);
    tel::flush_aggregates();
    let lines = tel::drain_memory_sink();
    assert!(!lines.is_empty(), "no JSONL emitted");
    let mut kinds = Vec::new();
    for line in &lines {
        let ev: tel::Event = serde_json::from_str(line).expect("line must parse as Event");
        // Round-trip: serialize again and reparse — identical.
        let re = serde_json::to_string(&ev).unwrap();
        let ev2: tel::Event = serde_json::from_str(&re).unwrap();
        assert_eq!(ev, ev2);
        kinds.push(ev.kind.clone());
    }
    assert!(kinds.iter().any(|k| k == "warn"));
    assert!(kinds.iter().any(|k| k == "counter"));
    assert!(kinds.iter().any(|k| k == "hist"));
    let warn_line = lines.iter().find(|l| l.contains("\"warn\"")).unwrap();
    let ev: tel::Event = serde_json::from_str(warn_line).unwrap();
    assert_eq!(ev.name, "test.code");
    assert_eq!(ev.msg, "something degenerate");
}

#[test]
fn file_sink_writes_parseable_jsonl() {
    let _g = fresh(tel::Level::Summary);
    let dir = std::env::temp_dir().join("rtgcn-telemetry-test");
    let path = tel::run_log_path(&dir, "unit_test", "RT-GCN (T)");
    tel::install_file_sink(&path).expect("sink install");
    tel::warn("io.check", "hello");
    tel::count("io.counter", 7);
    tel::flush_aggregates();
    tel::close_sink();
    let text = std::fs::read_to_string(&path).expect("log file exists");
    let mut parsed = 0;
    for line in text.lines() {
        let _: tel::Event = serde_json::from_str(line).expect("parseable line");
        parsed += 1;
    }
    assert!(parsed >= 2, "expected at least warn + counter events, got {parsed}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spans_merge_across_threads() {
    let _g = fresh(tel::Level::Summary);
    crossbeam::scope(|s| {
        for _ in 0..4 {
            s.spawn(|_| {
                let _root = tel::span("worker");
            });
        }
    })
    .expect("span threads panicked");
    let summary = tel::render_summary();
    assert!(summary.contains("worker"), "{summary}");
    assert!(summary.contains("| 4\n"), "4 worker spans expected:\n{summary}");
}

// ------------------------------------------------- scope order/leak checker

/// Guards dropped LIFO, with a balanced finish, must not produce any
/// `telemetry.scope_*` diagnostics.
#[test]
fn balanced_scope_use_emits_no_order_or_leak_warns() {
    let _g = fresh(tel::Level::Off);
    let scope = tel::ModelScope::new();
    scope.install_memory_sink();
    {
        let _e = scope.enter();
        tel::count("inner.work", 1);
    }
    scope.finish();
    let lines = scope.drain_memory_sink();
    assert!(
        !lines.iter().any(|l| l.contains("telemetry.scope_")),
        "clean enter/exit/finish must stay silent, got {lines:?}"
    );
}

/// Dropping scope guards out of LIFO order is the worker-pool bug the
/// checker exists for: the first wrong drop pops the *other* scope, so every
/// metric recorded in between lands in the wrong registry. Debug builds
/// report it as a `telemetry.scope_order` warn (never a panic in Drop).
#[cfg(debug_assertions)]
#[test]
fn out_of_order_guard_drop_warns_scope_order() {
    let _g = fresh(tel::Level::Off);
    let a = tel::ModelScope::new();
    let b = tel::ModelScope::new();
    a.install_memory_sink();
    let ga = a.enter();
    let gb = b.enter();
    // Wrong order: the guard for `a` drops while `b` is still on top.
    drop(ga);
    drop(gb);
    let a_lines = a.drain_memory_sink();
    assert!(
        a_lines.iter().any(|l| l.contains("telemetry.scope_order")),
        "out-of-order drop must warn, got {a_lines:?}"
    );
    // The root memory sink catches the second (now also mismatched) pop.
    let root_lines = tel::drain_memory_sink();
    assert!(
        root_lines.iter().any(|l| l.contains("telemetry.scope_order")),
        "second unwinding drop is also out of order, got {root_lines:?}"
    );
}

/// `finish()` while a worker thread still holds a guard flushes aggregates
/// mid-write; debug builds record `telemetry.scope_leak` in the scope's own
/// sink. Channel-synchronised so the worker provably holds its guard across
/// the `finish` call.
#[cfg(debug_assertions)]
#[test]
fn finish_with_live_cross_thread_guard_warns_scope_leak() {
    let _g = fresh(tel::Level::Off);
    let scope = tel::ModelScope::new();
    scope.install_memory_sink();
    let worker_scope = scope.clone();
    let (entered_tx, entered_rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        let _e = worker_scope.enter();
        entered_tx.send(()).unwrap();
        // Hold the guard until the main thread has called finish().
        done_rx.recv().unwrap();
    });
    entered_rx.recv().unwrap();
    scope.finish();
    done_tx.send(()).unwrap();
    worker.join().unwrap();
    let lines = scope.drain_memory_sink();
    assert!(
        lines.iter().any(|l| l.contains("telemetry.scope_leak")),
        "finish with a live guard must warn, got {lines:?}"
    );
    // The leak is also a counter in the scope registry, so it shows up in
    // a live /metrics scrape (satellite: scrapeable failure signals).
    let text = {
        let _e = scope.enter();
        tel::render_prometheus()
    };
    assert!(
        text.contains("rtgcn_telemetry_scope_leak_total 1"),
        "scope leak must be scrapeable, got:\n{text}"
    );
    // After the worker exits, a second finish is balanced: no new warn.
    // (The sticky `telemetry.scope_leak` *counter* still flushes — it is
    // deliberately scrapeable via /metrics after the fact.)
    scope.finish();
    let lines = scope.drain_memory_sink();
    assert!(
        !lines.iter().any(|l| l.contains("\"kind\":\"warn\"") && l.contains("telemetry.scope_leak")),
        "balanced finish must not warn, got {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"counter\"") && l.contains("telemetry.scope_leak")),
        "leak counter must stay scrapeable after the leak, got {lines:?}"
    );
}
