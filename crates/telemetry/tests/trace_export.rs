//! End-to-end tests for the `RTGCN_TRACE` exporters: Chrome-trace JSON
//! validity (parse with the vendored serde_json, matched B/E pairs,
//! monotone per-lane timestamps), folded-stack round-trips, per-model file
//! isolation under concurrency, and span accounting across panics.
//!
//! Everything here mutates process-global telemetry state (level, trace
//! dir, root registry), so each test holds `test_scope` for its full
//! duration and clears the trace dir before releasing it.

use proptest::prelude::*;
use rtgcn_telemetry as tel;
use std::path::PathBuf;

fn fresh_trace_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtgcn-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parsed view of one Chrome trace event (only the fields the tests check).
struct Ev {
    ph: String,
    ts: u64,
    tid: u64,
    path: String,
}

fn read_trace_events(path: &std::path::Path) -> Vec<Ev> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let v: serde_json::Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e:?}", path.display()));
    let obj = v.as_map().expect("top level must be an object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_seq())
        .expect("traceEvents array");
    let field = |m: &[(String, serde_json::Value)], k: &str| -> serde_json::Value {
        m.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()).unwrap_or(serde_json::Value::Null)
    };
    events
        .iter()
        .filter_map(|e| {
            let m = e.as_map()?;
            let ph = field(m, "ph").as_str()?.to_string();
            if ph == "M" {
                return None; // metadata (thread names)
            }
            let ts = field(m, "ts").as_f64()? as u64;
            let tid = field(m, "tid").as_f64()? as u64;
            let args = field(m, "args");
            let path = args
                .as_map()
                .and_then(|a| {
                    a.iter().find(|(k, _)| k == "path").and_then(|(_, v)| v.as_str().map(String::from))
                })
                .unwrap_or_default();
            Some(Ev { ph, ts, tid, path })
        })
        .collect()
}

#[test]
fn chrome_trace_is_valid_with_matched_pairs_and_monotone_timestamps() {
    let _g = tel::test_scope(tel::Level::Summary);
    let dir = fresh_trace_dir("valid");
    tel::trace::set_trace_dir(Some(dir.clone()));

    let scope = tel::ModelScope::new();
    scope.emit(&tel::Event::meta("harness", "traceh"));
    scope.emit(&tel::Event::meta("model", "ModelA"));
    {
        let _e = scope.enter();
        let _fit = tel::span("fit");
        for _ in 0..3 {
            let _epoch = tel::span("epoch");
            let _loss = tel::span("loss");
        }
    }
    scope.finish();
    tel::trace::set_trace_dir(None);

    let trace_path = dir.join("trace-traceh-modela.json");
    let events = read_trace_events(&trace_path);
    // 1 fit + 3 epoch + 3 loss spans, one B and one E each.
    assert_eq!(events.len(), 14, "expected 7 B/E pairs");
    // Matched pairs per path, and E never before B (stack discipline).
    use std::collections::BTreeMap;
    let mut open: BTreeMap<&str, i64> = BTreeMap::new();
    for e in &events {
        let delta = if e.ph == "B" { 1 } else { -1 };
        let c = open.entry(e.path.as_str()).or_insert(0);
        *c += delta;
        assert!(*c >= 0, "E before B for {}", e.path);
    }
    assert!(open.values().all(|&c| c == 0), "unmatched B events: {open:?}");
    // Timestamps are non-decreasing within each thread lane.
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &events {
        let prev = last_ts.insert(e.tid, e.ts).unwrap_or(0);
        assert!(e.ts >= prev, "ts went backwards in lane {}", e.tid);
    }
    // The folded profile exists and parses back to slash paths.
    let folded = std::fs::read_to_string(dir.join("folded-traceh-modela.txt")).unwrap();
    for (path, _us) in tel::trace::parse_folded(&folded) {
        assert!(
            ["fit", "fit/epoch", "fit/epoch/loss"].contains(&path.as_str()),
            "unexpected folded path {path}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_model_scopes_export_unmixed_trace_files() {
    let _g = tel::test_scope(tel::Level::Summary);
    let dir = fresh_trace_dir("twomodel");
    tel::trace::set_trace_dir(Some(dir.clone()));

    let mk = |model: &str| {
        let s = tel::ModelScope::new();
        s.emit(&tel::Event::meta("harness", "twoh"));
        s.emit(&tel::Event::meta("model", model));
        s
    };
    let (sa, sb) = (mk("alpha"), mk("beta"));
    let spawn = |scope: tel::ModelScope, name: &'static str| {
        std::thread::spawn(move || {
            let _e = scope.enter();
            for _ in 0..50 {
                let _s = tel::span(name);
            }
        })
    };
    let (ta, tb) = (spawn(sa.clone(), "alpha_work"), spawn(sb.clone(), "beta_work"));
    ta.join().unwrap();
    tb.join().unwrap();
    sa.finish();
    sb.finish();
    tel::trace::set_trace_dir(None);

    let read = |m: &str| std::fs::read_to_string(dir.join(format!("trace-twoh-{m}.json"))).unwrap();
    let (a, b) = (read("alpha"), read("beta"));
    assert!(a.contains("alpha_work") && !a.contains("beta_work"), "alpha trace mixed");
    assert!(b.contains("beta_work") && !b.contains("alpha_work"), "beta trace mixed");
    let folded_a = std::fs::read_to_string(dir.join("folded-twoh-alpha.txt")).unwrap();
    assert!(folded_a.starts_with("alpha_work "), "folded mixed: {folded_a}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_still_records_spans_and_leaves_the_stack_clean() {
    let _g = tel::test_scope(tel::Level::Summary);
    let dir = fresh_trace_dir("panic");
    tel::trace::set_trace_dir(Some(dir.clone()));

    let scope = tel::ModelScope::new();
    scope.emit(&tel::Event::meta("harness", "panich"));
    scope.emit(&tel::Event::meta("model", "probe"));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _e = scope.enter();
        let _job = tel::span("job");
        let _step = tel::span("step");
        std::thread::sleep(std::time::Duration::from_millis(2));
        panic!("probe panic");
    }));
    assert!(result.is_err());

    {
        let _e = scope.enter();
        // Both spans recorded their elapsed time despite the unwind.
        let aggs = tel::spantree::snapshot_current();
        let paths: Vec<&str> = aggs.iter().map(|a| a.path.as_str()).collect();
        assert_eq!(paths, ["job", "job/step"], "spans lost in unwind");
        let job = &aggs[0];
        assert_eq!(job.count, 1);
        assert!(job.total_ns >= 2_000_000, "elapsed time not recorded");
        // The thread-local span stack is clean: a new span opens at the root
        // (a stale frame would produce "job/after").
        drop(tel::span("after"));
        let aggs = tel::spantree::snapshot_current();
        assert!(aggs.iter().any(|a| a.path == "after"), "stack corrupted: {aggs:?}");
    }
    scope.finish();
    tel::trace::set_trace_dir(None);

    // The trace closed both B events even though the drops ran during unwind.
    let events = read_trace_events(&dir.join("trace-panich-probe.json"));
    let b = events.iter().filter(|e| e.ph == "B").count();
    let e = events.iter().filter(|e| e.ph == "E").count();
    assert_eq!(b, e, "unmatched B/E after panic");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Folded-stack strategy: up to 16 stacks of 1..5 known segments with a
/// self-time value each (µs). Paths may repeat — `render_folded` emits one
/// line per row and `parse_folded` preserves line order, so the round trip
/// is exact on the µs-positive subset.
fn folded_rows() -> impl Strategy<Value = Vec<(Vec<u32>, u64)>> {
    proptest::collection::vec(
        (proptest::collection::vec(0u32..8, 1..5), 0u64..10_000),
        1..16,
    )
}

const SEGS: [&str; 8] =
    ["fit", "epoch", "loss", "backward", "optim", "relational", "temporal", "spmm_csr"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn folded_render_parse_round_trip(rows in folded_rows()) {
        let aggs: Vec<tel::spantree::SpanAgg> = rows
            .iter()
            .map(|(segs, us)| {
                let path: Vec<&str> = segs.iter().map(|&i| SEGS[i as usize]).collect();
                tel::spantree::SpanAgg {
                    path: path.join("/"),
                    count: 1,
                    total_ns: us * 1_000,
                    self_ns: us * 1_000,
                    alloc_bytes: 0,
                    freed_bytes: 0,
                    self_alloc_bytes: 0,
                }
            })
            .collect();
        let text = tel::trace::render_folded(&aggs);
        let parsed = tel::trace::parse_folded(&text);
        let expected: Vec<(String, u64)> = aggs
            .iter()
            .filter(|a| a.self_ns / 1_000 > 0)
            .map(|a| (a.path.clone(), a.self_ns / 1_000))
            .collect();
        prop_assert_eq!(parsed, expected);
    }
}

/// Trace-buffer overflow must be scrapeable, not just a stderr warning:
/// every dropped event increments a `trace.dropped_events` counter in the
/// owning scope's registry, which `/metrics` renders as
/// `rtgcn_trace_dropped_events_total`.
#[test]
fn trace_overflow_increments_scrapeable_counter() {
    let _g = tel::test_scope(tel::Level::Summary);
    let dir = fresh_trace_dir("dropped");
    tel::trace::set_trace_dir(Some(dir.clone()));
    tel::trace::set_max_events_per_scope_for_tests(4);
    let scope = tel::ModelScope::new();
    {
        let _e = scope.enter();
        // Each span is a B+E pair: the cap of 4 fits two spans, the rest
        // overflow (two dropped events per extra span).
        for _ in 0..5 {
            drop(tel::span("overflow"));
        }
    }
    tel::trace::set_max_events_per_scope_for_tests(0);
    tel::trace::set_trace_dir(None);
    let text = {
        let _e = scope.enter();
        tel::render_prometheus()
    };
    assert!(
        text.contains("rtgcn_trace_dropped_events_total 6"),
        "dropped trace events must be scrapeable, got:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
