//! Tests for the `rtgcn-monitor` HTTP layer (`telemetry::http`): endpoint
//! behaviour, protocol hardening (malformed request lines, oversized
//! headers, premature disconnects, concurrent scrapes), and a property test
//! that every line `/metrics` can produce matches the Prometheus text
//! exposition grammar.
//!
//! Each test starts its own [`tel::http::Server`] on `127.0.0.1:0`, so
//! tests never share a port; tests that mutate process-global telemetry
//! state (registries, the health board) hold the telemetry test lock.

use proptest::prelude::*;
use rtgcn_telemetry as tel;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start() -> tel::http::Server {
    tel::http::Server::start("127.0.0.1:0").expect("bind 127.0.0.1:0")
}

/// Send raw bytes, read the whole response (the server always closes).
fn raw_request(server: &tel::http::Server, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // The server may respond (431) before we finish writing; ignore EPIPE.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn get(server: &tel::http::Server, path: &str) -> String {
    raw_request(server, format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let _g = tel::test_scope(tel::Level::Summary);
    tel::count("http.test.metric", 3);
    let server = start();
    let resp = get(&server, "/metrics");
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("Content-Type: text/plain; version=0.0.4"), "{resp}");
    // The root scope's counter and the build-info satellite both render.
    assert!(resp.contains("rtgcn_http_test_metric_total 3"), "{resp}");
    assert!(resp.contains("# TYPE rtgcn_build_info gauge"), "{resp}");
    assert!(resp.contains("rtgcn_process_uptime_seconds"), "{resp}");
}

#[test]
fn healthz_is_200_until_a_model_diverges_then_sticky_503() {
    let _g = tel::test_lock();
    tel::health::board_reset();
    let server = start();
    tel::health::board_record("LSTM", tel::health::HealthVerdict::Healthy);
    let resp = get(&server, "/healthz");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(body_of(&resp).contains("\"Healthy\""), "{resp}");

    tel::health::board_record("RT-GCN (U)", tel::health::HealthVerdict::Diverged);
    let resp = get(&server, "/healthz");
    assert_eq!(status_of(&resp), 503, "{resp}");
    assert!(body_of(&resp).contains("\"Diverged\""), "{resp}");

    // Sticky: a later healthy epoch must not clear the divergence.
    tel::health::board_record("RT-GCN (U)", tel::health::HealthVerdict::Healthy);
    let resp = get(&server, "/healthz");
    assert_eq!(status_of(&resp), 503, "verdicts are sticky-max: {resp}");
    tel::health::board_reset();
}

#[test]
fn spans_endpoint_returns_parseable_json_rows() {
    let _g = tel::test_scope(tel::Level::Summary);
    {
        let _outer = tel::span("fit");
        let _inner = tel::span("epoch");
    }
    let server = start();
    let resp = get(&server, "/spans");
    assert_eq!(status_of(&resp), 200);
    let v: serde_json::Value = serde_json::from_str(body_of(&resp)).expect("valid JSON");
    let rows = v.as_seq().expect("top-level array");
    assert!(
        rows.iter().any(|r| {
            r.as_map().is_some_and(|m| {
                m.iter().any(|(k, v)| k == "path" && v.as_str() == Some("fit/epoch"))
            })
        }),
        "expected fit/epoch row in {resp}"
    );
}

#[test]
fn malformed_request_lines_get_400() {
    let server = start();
    for bad in [
        "GARBAGE\r\n\r\n",
        "GET /metrics\r\n\r\n",                  // missing HTTP version
        "GET /metrics HTTP/1.1 extra\r\n\r\n",   // four tokens
        "GET metrics HTTP/1.1\r\n\r\n",          // target without leading /
        " / HTTP/1.1\r\n\r\n",                   // empty method
    ] {
        let resp = raw_request(&server, bad.as_bytes());
        assert_eq!(status_of(&resp), 400, "request {bad:?} got {resp:?}");
    }
}

#[test]
fn non_get_methods_get_405_and_unknown_paths_404() {
    let server = start();
    let resp = raw_request(&server, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&resp), 405, "{resp}");
    let resp = get(&server, "/nope");
    assert_eq!(status_of(&resp), 404, "{resp}");
    // Query strings are stripped before routing.
    let _g = tel::test_scope(tel::Level::Summary);
    let resp = get(&server, "/metrics?x=1");
    assert_eq!(status_of(&resp), 200, "{resp}");
}

#[test]
fn oversized_request_head_gets_431() {
    let server = start();
    let mut req = String::from("GET /metrics HTTP/1.1\r\n");
    while req.len() <= tel::http::MAX_HEAD_BYTES + 1024 {
        req.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    req.push_str("\r\n");
    let resp = raw_request(&server, req.as_bytes());
    assert_eq!(status_of(&resp), 431, "{resp:?}");
}

#[test]
fn premature_disconnect_leaves_server_serving() {
    let server = start();
    for _ in 0..3 {
        // Half a request line, then hang up.
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut s = stream;
        let _ = s.write_all(b"GET /metr");
        drop(s);
    }
    let _g = tel::test_scope(tel::Level::Summary);
    let resp = get(&server, "/metrics");
    assert_eq!(status_of(&resp), 200, "server must survive disconnects: {resp}");
}

#[test]
fn concurrent_scrapes_all_succeed() {
    let _g = tel::test_scope(tel::Level::Summary);
    tel::count("http.concurrent.metric", 1);
    let server = start();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
                let mut out = String::new();
                let _ = stream.read_to_string(&mut out);
                out
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().expect("scrape thread");
        assert_eq!(status_of(&resp), 200, "{resp}");
        assert!(resp.contains("rtgcn_http_concurrent_metric_total 1"), "{resp}");
    }
}

#[test]
fn shutdown_releases_the_port_and_stops_serving() {
    let server = start();
    let addr = server.local_addr();
    server.shutdown();
    // A fresh bind on the same port must now succeed.
    let rebound = tel::http::Server::start(&addr.to_string()).expect("rebind after shutdown");
    rebound.shutdown();
}

// ----------------------------------------------------- exposition grammar

/// `true` if `s` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` if `s` is a valid label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validate one sample line: `name{label="value",...} value`. Returns an
/// error message naming the offence.
fn validate_sample_line(line: &str) -> Result<(), String> {
    let name_end = line.find(['{', ' ']).ok_or("no name terminator")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        // Parse label pairs char by char, honouring \" escapes.
        let mut chars = after_brace.char_indices().peekable();
        loop {
            // label name up to '='
            let start = match chars.peek() {
                Some(&(i, _)) => i,
                None => return Err("unterminated label set".into()),
            };
            let mut eq = None;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
            }
            let eq = eq.ok_or("label without '='")?;
            if !valid_label_name(&after_brace[start..eq]) {
                return Err(format!("invalid label name {:?}", &after_brace[start..eq]));
            }
            match chars.next() {
                Some((_, '"')) => {}
                other => return Err(format!("label value must start with '\"', got {other:?}")),
            }
            // label value: consume until unescaped '"'
            let mut escaped = false;
            let mut closed = false;
            for (_, c) in chars.by_ref() {
                if escaped {
                    if !matches!(c, '\\' | '"' | 'n') {
                        return Err(format!("invalid escape \\{c}"));
                    }
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    closed = true;
                    break;
                } else if c == '\n' {
                    return Err("raw newline in label value".into());
                }
            }
            if !closed {
                return Err("unterminated label value".into());
            }
            match chars.next() {
                Some((_, ',')) => continue,
                Some((j, '}')) => {
                    rest = &after_brace[j + 1..];
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    let value = rest.strip_prefix(' ').ok_or("no space before value")?;
    if value.is_empty() || value.contains(' ') {
        // (no timestamps in our output, so exactly one value token)
        return Err(format!("bad value field {value:?}"));
    }
    match value {
        "+Inf" | "-Inf" | "NaN" => Ok(()),
        v => v.parse::<f64>().map(|_| ()).map_err(|e| format!("unparseable value {v:?}: {e}")),
    }
}

/// Validate a whole exposition body: comment lines are well-formed
/// HELP/TYPE with valid names and known types; everything else is a valid
/// sample line; TYPE appears at most once per family.
fn validate_exposition(text: &str) {
    let mut seen_type: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            let kw = it.next().unwrap_or("");
            let name = it.next().unwrap_or("");
            assert!(kw == "HELP" || kw == "TYPE", "unknown comment keyword in {line:?}");
            assert!(valid_metric_name(name), "invalid family name in {line:?}");
            if kw == "TYPE" {
                let kind = it.next().unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                    "unknown type in {line:?}"
                );
                assert!(!seen_type.contains(&name.to_string()), "duplicate TYPE for {name}");
                seen_type.push(name.to_string());
            }
            continue;
        }
        if let Err(e) = validate_sample_line(line) {
            panic!("bad sample line {line:?}: {e}");
        }
    }
}

/// Characters deliberately hostile to the exposition format: dots and
/// slashes (name sanitisation), quotes/backslashes/newlines (label value
/// escaping), unicode, spaces, leading digits.
const HOSTILE: [char; 14] =
    ['a', 'Z', '7', '.', '-', '/', ' ', '"', '\\', '\n', 'é', '_', '{', '}'];

fn hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..HOSTILE.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| HOSTILE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever metric/span names and values land in the registries, every
    /// line of the merged /metrics body obeys the exposition grammar.
    #[test]
    fn every_rendered_metric_line_matches_the_grammar(
        names in proptest::collection::vec(hostile_string(), 1..5),
        counts in proptest::collection::vec(0u64..1000, 1..5),
        gauge_vals in proptest::collection::vec(-1.0e12f64..1.0e12, 1..4),
        span_name in hostile_string(),
    ) {
        let _g = tel::test_scope(tel::Level::Summary);
        for (i, name) in names.iter().enumerate() {
            tel::count(name, counts[i % counts.len()]);
        }
        for (i, v) in gauge_vals.iter().enumerate() {
            tel::gauge("prop.gauge", i as u64, *v);
        }
        tel::gauge("prop.nan", 0, f64::NAN);
        tel::record_ns("prop.hist", 123);
        tel::record_ns("prop.hist", 456_789);
        drop(tel::span(&span_name));
        let scope = tel::ModelScope::new();
        scope.emit(&tel::Event::meta("model", &span_name));
        {
            let _e = scope.enter();
            tel::count("prop.scoped", 1);
        }
        let text = tel::render_prometheus_all();
        validate_exposition(&text);
        prop_assert!(!text.contains("NaN"), "non-finite values must be skipped:\n{text}");
    }
}
