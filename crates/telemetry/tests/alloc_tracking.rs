//! End-to-end test of the tracking `#[global_allocator]`: this test binary
//! installs it exactly as harness binaries do, then proves that enabled
//! tracking attributes bytes to the active span, publishes `alloc.*`
//! counters at flush, and feeds the health monitor's per-epoch
//! `mem.peak_bytes` gauge — while disabled tracking records nothing.

rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_telemetry as tel;

const MB: u64 = 1 << 20;

#[test]
fn enabled_tracking_attributes_bytes_to_the_active_span() {
    let _g = tel::test_scope(tel::Level::Summary);
    tel::alloc::set_tracking(true);
    tel::alloc::reset_peak();
    {
        let _s = tel::span("alloc_work");
        let v: Vec<u8> = vec![0u8; MB as usize];
        std::hint::black_box(&v);
        drop(v);
        // Allocation that outlives the inner one: nested span attribution.
        let _inner = tel::span("inner");
        let w: Vec<u8> = vec![0u8; (MB / 2) as usize];
        std::hint::black_box(&w);
    }
    tel::flush_aggregates();
    let aggs = tel::spantree::snapshot_current();
    let outer = aggs.iter().find(|a| a.path == "alloc_work").expect("outer span");
    let inner = aggs.iter().find(|a| a.path == "alloc_work/inner").expect("inner span");
    assert!(outer.alloc_bytes >= MB + MB / 2, "outer alloc {} too small", outer.alloc_bytes);
    assert!(outer.freed_bytes >= MB, "outer freed {} too small", outer.freed_bytes);
    assert!(inner.alloc_bytes >= MB / 2, "inner alloc {} too small", inner.alloc_bytes);
    // Self-alloc subtracts the child: the outer's own MiB dominates.
    assert!(outer.self_alloc_bytes >= MB, "self alloc {}", outer.self_alloc_bytes);
    assert!(outer.self_alloc_bytes < outer.alloc_bytes, "child not subtracted");
    // Flush published the scope totals as alloc.* counters.
    assert!(tel::counter_value("alloc.bytes_allocated") >= MB + MB / 2);
    assert!(tel::counter_value("alloc.bytes_freed") >= MB);
    assert!(tel::counter_value("alloc.peak_live_bytes") > 0);
    assert!(tel::alloc::peak_live_bytes() >= MB, "peak missed the 1MiB burst");
    // The summary gains the self-alloc column while tracking is on.
    assert!(tel::render_summary().contains("self-alloc"));
    tel::alloc::set_tracking(false);
}

#[test]
fn health_monitor_gauges_per_epoch_peak_bytes() {
    let _g = tel::test_scope(tel::Level::Summary);
    tel::alloc::set_tracking(true);
    tel::alloc::reset_peak();
    let mut m = tel::health::HealthMonitor::new("alloc-probe", Default::default());
    let v: Vec<u8> = vec![0u8; (2 * MB) as usize];
    std::hint::black_box(&v);
    m.observe_step(0.5, 0.3, 0.2, 1.0);
    m.end_epoch(1.0, 0.0);
    drop(v);
    let points = tel::series_points("mem.peak_bytes");
    assert_eq!(points.len(), 1, "one epoch, one peak sample");
    assert!(points[0].value >= (2 * MB) as f64, "peak {} too small", points[0].value);
    // end_epoch restarted the peak window from current live bytes.
    assert!(tel::alloc::peak_live_bytes() >= tel::alloc::live_bytes());
    tel::alloc::set_tracking(false);
}

#[test]
fn disabled_tracking_records_nothing() {
    let _g = tel::test_scope(tel::Level::Summary);
    tel::alloc::set_tracking(false);
    {
        let _s = tel::span("quiet");
        let v: Vec<u8> = vec![0u8; MB as usize];
        std::hint::black_box(&v);
    }
    let aggs = tel::spantree::snapshot_current();
    let quiet = aggs.iter().find(|a| a.path == "quiet").expect("span");
    assert_eq!(quiet.alloc_bytes, 0);
    assert_eq!(quiet.freed_bytes, 0);
    tel::flush_aggregates();
    assert_eq!(tel::counter_value("alloc.bytes_allocated"), 0);
    assert!(!tel::render_summary().contains("self-alloc"));
}
