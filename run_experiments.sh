#!/bin/sh
# Sequential experiment queue (single-core machine). Each harness prints the
# paper-style table to its log and writes a JSON artifact into results/.
set -x
cd /root/repo
B=./target/release
R=results/logs
$B/table2_dataset_stats                                > $R/table2.txt 2>&1
$B/table3_relation_stats                               > $R/table3.txt 2>&1
$B/table4_baselines --markets csi    --seeds 3 --epochs 3 > $R/table4_csi.txt 2>&1
$B/table4_baselines --markets nasdaq --seeds 2 --epochs 3 > $R/table4_nasdaq.txt 2>&1
$B/fig5_speed       --markets nasdaq                   > $R/fig5.txt 2>&1
$B/fig8_case_study  --epochs 3                         > $R/fig8.txt 2>&1
$B/table7_module_ablation --markets csi,nasdaq --seeds 1 --epochs 3 > $R/table7.txt 2>&1
$B/table6_relation_types  --markets nasdaq --seeds 1 --epochs 3     > $R/table6.txt 2>&1
$B/fig6_return_curves --markets nasdaq,csi --epochs 3  > $R/fig6.txt 2>&1
$B/fig7_hyperparams  --markets csi --seeds 1 --epochs 3 > $R/fig7.txt 2>&1
$B/table5_published_setting --markets nasdaq --seeds 3 --epochs 3 > $R/table5.txt 2>&1
$B/table4_baselines --markets nyse --seeds 1 --epochs 2 > $R/table4_nyse.txt 2>&1
$B/table5_published_setting --markets nyse --seeds 1 --epochs 2 > $R/table5_nyse.txt 2>&1
echo ALL_EXPERIMENTS_DONE
