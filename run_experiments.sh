#!/bin/sh
# Sequential experiment queue (single-core machine). Each harness prints the
# paper-style table to its log and writes a JSON artifact into results/;
# telemetry JSONL streams land next to the .txt captures (see --logs).
#
# Usage: ./run_experiments.sh [--logs DIR] [--bench-snapshot] [--verify-perf] [--resume] [--lint] [--profile] [--monitor-smoke] [--serve-smoke] [--stream-smoke]
#   --logs DIR        directory for harness stdout captures and telemetry
#                     JSONL (default results/logs; forwarded to every
#                     harness binary)
#   --lint            static-analysis gate only (skips the full queue):
#                     build the workspace, run clippy -D warnings, then
#                     rtgcn-lint --deny --json results/LINT.json; exits 3
#                     on any lint finding
#   --bench-snapshot  after the queue, fold the table4 run logs into
#                     results/BENCH_table4.json via rtgcn-report; if
#                     results/BENCH_table4.baseline.json exists, diff
#                     against it and fail (exit 3) on any >50% perf
#                     regression (past the single-core box's measured
#                     same-binary noise floor)
#   --verify-perf     fast perf gate (skips the full queue): build, run a
#                     quick table4_baselines pass into a scratch logs dir,
#                     snapshot it to results/BENCH_table4.verify.json, and
#                     diff against the committed results/BENCH_table4.json
#                     with a 1.25x ratio threshold; exits non-zero on any
#                     >25% regression
#   --profile         profiling pass (skips the full queue): build, run a
#                     1-seed csi table4 pass with RTGCN_TRACE and
#                     RTGCN_ALLOC_STATS=1, write the per-model Chrome-trace
#                     JSON and collapsed-stack files under
#                     results/logs/profile/, and fold the run into
#                     results/PROFILE_table4.md (top-20 spans by self time)
#   --monitor-smoke   live-observability gate (skips the full queue):
#                     build, then run rtgcn-monitor-smoke — a 1-seed
#                     harness with RTGCN_MONITOR=127.0.0.1:0 that scrapes
#                     /metrics, /healthz, /runs, and /spans over a raw
#                     std::net::TcpStream (no curl) and exits non-zero on
#                     any non-200 status or unparseable body; also runs
#                     inside the default queue's gate alongside lint
#   --serve-smoke     scoring-service gate (skips the full queue): build,
#                     then run rtgcn-serve-smoke — train a 1-seed RT-GCN,
#                     checkpoint it to disk, reload, boot /rank + /score on
#                     the monitor server, scrape every endpoint, and run a
#                     short concurrent load test with mid-load hot-swaps
#                     (zero failed requests tolerated); folds the latency
#                     histograms into results/BENCH_serve.json and, if
#                     results/BENCH_serve.baseline.json exists, diffs
#                     against it; also runs inside the default queue's gate
#   --stream-smoke    streaming-pipeline gate (skips the full queue): build,
#                     then run rtgcn-stream-smoke — train a 1-seed RT-GCN
#                     just before the crash shock and walk it forward day
#                     by day through the streaming engine (incremental
#                     features, per-plane adjacency refresh, one edge add
#                     and one drop, scheduled refits), proving bitwise
#                     parity against a from-scratch rebuild; folds the
#                     walk-forward MRR/IRR series into
#                     results/BENCH_stream.json and, if
#                     results/BENCH_stream.baseline.json exists, diffs
#                     against it; also runs inside the default queue's gate
#   --resume          resume smoke check (skips the full queue): start a
#                     parallel table4 run, kill it after the first job lands
#                     in the jobs-*.jsonl journal, rerun to completion, and
#                     assert the rerun resumed the completed job instead of
#                     recomputing it; exits 4 on failure
#
# Parallelism: the harness binaries fan (model, seed) jobs over RTGCN_JOBS
# workers (default: all cores). The perf-sensitive table4 passes below pin
# RTGCN_JOBS=1 — the committed BENCH baselines are serial timings, and
# concurrent jobs sharing cores would inflate per-seed wall-clock.
set -e
set -x
cd /root/repo

R=results/logs
SNAPSHOT=0
VERIFY=0
RESUME=0
LINT=0
PROFILE=0
MONITOR_SMOKE=0
SERVE_SMOKE=0
STREAM_SMOKE=0
while [ $# -gt 0 ]; do
  case "$1" in
    --logs)
      [ $# -ge 2 ] || { echo "error[run_experiments]: --logs requires a value" >&2; exit 2; }
      R="$2"; shift 2 ;;
    --bench-snapshot)
      SNAPSHOT=1; shift ;;
    --verify-perf)
      VERIFY=1; shift ;;
    --resume)
      RESUME=1; shift ;;
    --lint)
      LINT=1; shift ;;
    --profile)
      PROFILE=1; shift ;;
    --monitor-smoke)
      MONITOR_SMOKE=1; shift ;;
    --serve-smoke)
      SERVE_SMOKE=1; shift ;;
    --stream-smoke)
      STREAM_SMOKE=1; shift ;;
    *)
      echo "error[run_experiments]: unknown flag $1 (usage: [--logs DIR] [--bench-snapshot] [--verify-perf] [--resume] [--lint] [--profile] [--monitor-smoke] [--serve-smoke] [--stream-smoke])" >&2; exit 2 ;;
  esac
done
mkdir -p "$R"

B=./target/release

# Scoring-service smoke: train + checkpoint a 1-seed RT-GCN, boot /rank and
# /score over the monitor server, scrape every endpoint, then load-test with
# hot-swaps mid-load. Folds the request-latency histograms into
# results/BENCH_serve.json and diffs against the committed baseline (if
# present) at the same 1.5x threshold as the table4 perf gate. Shared by
# the --serve-smoke early exit and the default queue's gate.
serve_smoke_pass() {
  S="$R/serve-smoke"
  rm -rf "$S"
  mkdir -p "$S"
  $B/rtgcn-serve-smoke --logs "$S" --seeds 1 --epochs 1 > "$S/serve_smoke.txt" 2>&1 \
    || { cat "$S/serve_smoke.txt" >&2; echo SERVE_SMOKE_FAIL >&2; exit 5; }
  grep -q 'serving endpoints healthy' "$S/serve_smoke.txt" \
    || { echo "SERVE_SMOKE_FAIL: missing healthy marker in $S/serve_smoke.txt" >&2; exit 5; }
  grep -q 'hot-swap clean' "$S/serve_smoke.txt" \
    || { echo "SERVE_SMOKE_FAIL: hot-swap marker missing in $S/serve_smoke.txt" >&2; exit 5; }
  $B/rtgcn-report --logs "$S" --harness serve_smoke \
    --out results/BENCH_serve.json --md "$S/BENCH_serve.md"
  if [ -f results/BENCH_serve.baseline.json ]; then
    $B/rtgcn-report --baseline results/BENCH_serve.baseline.json \
      results/BENCH_serve.json --threshold 1.5
  fi
}

# Streaming day-advance smoke: train a 1-seed RT-GCN truncated right before
# the crash shock, walk it forward day by day through the stream engine
# (edge add + drop mid-walk, 5-day refit cadence), and demand bitwise
# parity against a from-scratch rebuild. Folds the walk-forward MRR/IRR
# gauges and scoring-latency histogram into results/BENCH_stream.json.
# Shared by the --stream-smoke early exit and the default queue's gate.
stream_smoke_pass() {
  S="$R/stream-smoke"
  rm -rf "$S"
  mkdir -p "$S"
  $B/rtgcn-stream-smoke --logs "$S" --seeds 1 --epochs 2 > "$S/stream_smoke.txt" 2>&1 \
    || { cat "$S/stream_smoke.txt" >&2; echo STREAM_SMOKE_FAIL >&2; exit 5; }
  grep -q 'streaming parity verified' "$S/stream_smoke.txt" \
    || { echo "STREAM_SMOKE_FAIL: parity marker missing in $S/stream_smoke.txt" >&2; exit 5; }
  grep -q 'walk-forward:' "$S/stream_smoke.txt" \
    || { echo "STREAM_SMOKE_FAIL: walk-forward marker missing in $S/stream_smoke.txt" >&2; exit 5; }
  $B/rtgcn-report --logs "$S" --harness stream_smoke \
    --out results/BENCH_stream.json --md "$S/BENCH_stream.md"
  if [ -f results/BENCH_stream.baseline.json ]; then
    $B/rtgcn-report --baseline results/BENCH_stream.baseline.json \
      results/BENCH_stream.json --threshold 1.5
  fi
}

if [ "$LINT" = 1 ]; then
  # Static-analysis gate only: the same build + clippy + rtgcn-lint
  # sequence the full queue runs before its harnesses. `set -e` propagates
  # rtgcn-lint's exit 3 on findings.
  cargo build --release --workspace
  cargo clippy --workspace -- -D warnings
  $B/rtgcn-lint --deny --json results/LINT.json
  echo LINT_OK
  exit 0
fi

if [ "$MONITOR_SMOKE" = 1 ]; then
  # Live-observability gate only: the same smoke pass the default queue
  # runs after lint. The binary defaults RTGCN_MONITOR to 127.0.0.1:0
  # (ephemeral loopback port) and exits 2 on any endpoint failure.
  cargo build --release --workspace
  M="$R/monitor-smoke"
  rm -rf "$M"
  mkdir -p "$M"
  RTGCN_JOBS=2 $B/rtgcn-monitor-smoke --logs "$M" --seeds 1 --epochs 1 > "$M/monitor_smoke.txt" 2>&1 \
    || { cat "$M/monitor_smoke.txt" >&2; echo MONITOR_SMOKE_FAIL >&2; exit 5; }
  grep -q 'all four endpoints healthy' "$M/monitor_smoke.txt" \
    || { echo "MONITOR_SMOKE_FAIL: missing healthy marker in $M/monitor_smoke.txt" >&2; exit 5; }
  echo MONITOR_SMOKE_OK
  exit 0
fi

if [ "$SERVE_SMOKE" = 1 ]; then
  # Scoring-service gate only: the same pass the default queue runs after
  # the monitor smoke.
  cargo build --release --workspace
  serve_smoke_pass
  echo SERVE_SMOKE_OK
  exit 0
fi

if [ "$STREAM_SMOKE" = 1 ]; then
  # Streaming-pipeline gate only: the same pass the default queue runs
  # after the serve smoke.
  cargo build --release --workspace
  stream_smoke_pass
  echo STREAM_SMOKE_OK
  exit 0
fi

if [ "$PROFILE" = 1 ]; then
  # Profiling pass: one cheap serial table4 run with the exporters and the
  # tracking allocator on. Keeps the scale small (1 seed, 2 epochs) — the
  # trace buffer grows with span count, and the self-time ranking is about
  # shape, not absolute numbers.
  cargo build --release --workspace
  P="$R/profile"
  rm -rf "$P"
  mkdir -p "$P"
  RTGCN_JOBS=1 RTGCN_TRACE="$P" RTGCN_ALLOC_STATS=1 \
    $B/table4_baselines --logs "$P" --markets csi --seeds 1 --epochs 2 > "$P/table4_csi.txt" 2>&1
  # Every model must have produced a loadable trace and a folded stack.
  ls "$P"/trace-table4_baselines-*.json > /dev/null
  ls "$P"/folded-table4_baselines-*.txt > /dev/null
  $B/rtgcn-report --logs "$P" --harness table4_baselines \
    --out "$P/BENCH_table4.profile.json" --md "$P/BENCH_table4.profile.md" \
    --profile-md results/PROFILE_table4.md --top 20
  echo "PROFILE_OK (traces under $P, table in results/PROFILE_table4.md)"
  exit 0
fi

if [ "$RESUME" = 1 ]; then
  # Fault-tolerance smoke: a killed harness must resume from its job journal.
  cargo build --release --workspace
  S="$R/resume-smoke"
  rm -rf "$S"
  mkdir -p "$S"
  J="$S/jobs-table4_baselines.jsonl"
  RTGCN_JOBS=2 $B/table4_baselines --logs "$S" --markets csi --seeds 2 --epochs 1 > "$S/first.txt" 2>&1 &
  PID=$!
  # Wait (up to ~5 min) for the first completed job to hit the journal, then
  # kill the harness mid-run.
  i=0
  while [ $i -lt 600 ]; do
    { [ -f "$J" ] && grep -q '"status":"ok"' "$J"; } && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.5
    i=$((i + 1))
  done
  kill "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true
  grep -q '"status":"ok"' "$J" || { echo "RESUME_SMOKE_FAIL: no completed job journalled before the kill" >&2; exit 4; }
  N_BEFORE=$(grep -c '"status":"ok"' "$J")
  RTGCN_JOBS=2 $B/table4_baselines --logs "$S" --markets csi --seeds 2 --epochs 1 > "$S/second.txt" 2>&1
  grep -q 'resumed [1-9][0-9]* completed job' "$S/second.txt" \
    || { echo "RESUME_SMOKE_FAIL: rerun did not resume from the journal" >&2; exit 4; }
  echo "RESUME_SMOKE_OK (resumed $N_BEFORE pre-kill job(s))"
  exit 0
fi

if [ "$VERIFY" = 1 ]; then
  # Quick perf gate for CI / pre-commit: one cheap harness pass, then diff
  # its snapshot against the committed baseline at a 1.25x ratio threshold.
  # A failed diff is re-measured once before failing — single-run noise on
  # the shared single-core box reaches ±40% on fast paths, a genuine kernel
  # regression reproduces. --workspace matters: a bare `cargo build` only
  # builds the root package, leaving stale harness binaries in
  # target/release.
  cargo build --release --workspace
  V="$R/verify-perf"
  attempt=1
  while :; do
    rm -rf "$V"
    mkdir -p "$V"
    RTGCN_JOBS=1 $B/table4_baselines --logs "$V" --markets csi --seeds 1 --epochs 2 > "$V/table4_csi.txt" 2>&1
    $B/rtgcn-report --logs "$V" --harness table4_baselines \
      --out results/BENCH_table4.verify.json --md "$V/BENCH_table4.verify.md"
    # --verify-perf defaults NEW_JSON to the snapshot written just above and
    # the threshold to 1.25; on failure it names the top regressing span
    # paths by self time.
    if $B/rtgcn-report --baseline results/BENCH_table4.json --verify-perf; then
      break
    fi
    [ "$attempt" -ge 2 ] && { echo "VERIFY_PERF_REGRESSION (reproduced on re-measure)" >&2; exit 3; }
    echo "verify-perf: regression on first measure; re-measuring once to rule out machine noise" >&2
    attempt=2
  done
  echo VERIFY_PERF_OK
  exit 0
fi

# Build once up front — every harness below (and rtgcn-lint) runs from
# target/release, and a bare `cargo build` would only build the root
# package, leaving stale harness binaries behind.
cargo build --release --workspace
# Lint gates: the harnesses below silently produce wrong tables if warnings
# (unused results, lossy casts) or convention violations (NaN-mangling
# min/max, panicking hot paths) slip in. Offline-safe — all deps are
# path-vendored, so neither gate touches the network. rtgcn-lint exits 3
# on any finding; results/LINT.json is the committed findings/allows
# inventory.
cargo clippy --workspace -- -D warnings
$B/rtgcn-lint --deny --json results/LINT.json
# Live-observability smoke: every queue run proves the monitor transport
# (all four endpoints, ephemeral loopback port) before burning hours on
# the harnesses it is meant to make watchable.
M="$R/monitor-smoke"
rm -rf "$M"
mkdir -p "$M"
RTGCN_JOBS=2 $B/rtgcn-monitor-smoke --logs "$M" --seeds 1 --epochs 1 > "$M/monitor_smoke.txt" 2>&1 \
  || { cat "$M/monitor_smoke.txt" >&2; echo MONITOR_SMOKE_FAIL >&2; exit 5; }
# Scoring-service smoke: the serving stack (durable checkpoints, hot-swap
# registry, /rank + /score) must survive a concurrent load test before the
# queue's long harnesses run.
serve_smoke_pass
# Streaming smoke: the day-advance pipeline must stay bit-identical to a
# batch rebuild (edge mutations, refits and all) on every queue run.
stream_smoke_pass
$B/table2_dataset_stats --logs "$R"                    > $R/table2.txt 2>&1
$B/table3_relation_stats --logs "$R"                   > $R/table3.txt 2>&1
RTGCN_JOBS=1 $B/table4_baselines --logs "$R" --markets csi    --seeds 3 --epochs 3 > $R/table4_csi.txt 2>&1
RTGCN_JOBS=1 $B/table4_baselines --logs "$R" --markets nasdaq --seeds 2 --epochs 3 > $R/table4_nasdaq.txt 2>&1
$B/fig5_speed       --logs "$R" --markets nasdaq       > $R/fig5.txt 2>&1
$B/fig8_case_study  --logs "$R" --epochs 3             > $R/fig8.txt 2>&1
$B/table7_module_ablation --logs "$R" --markets csi,nasdaq --seeds 1 --epochs 3 > $R/table7.txt 2>&1
$B/table6_relation_types  --logs "$R" --markets nasdaq --seeds 1 --epochs 3     > $R/table6.txt 2>&1
$B/fig6_return_curves --logs "$R" --markets nasdaq,csi --epochs 3  > $R/fig6.txt 2>&1
$B/fig7_hyperparams  --logs "$R" --markets csi --seeds 1 --epochs 3 > $R/fig7.txt 2>&1
$B/table5_published_setting --logs "$R" --markets nasdaq --seeds 3 --epochs 3 > $R/table5.txt 2>&1
$B/table4_baselines --logs "$R" --markets nyse --seeds 1 --epochs 2 > $R/table4_nyse.txt 2>&1
$B/table5_published_setting --logs "$R" --markets nyse --seeds 1 --epochs 2 > $R/table5_nyse.txt 2>&1

if [ "$SNAPSHOT" = 1 ]; then
  # Machine-readable perf baseline from the table4 telemetry streams
  # (kernel percentiles, epoch/phase timings, health verdicts). `set -e`
  # propagates rtgcn-report's exit 3 when the diff finds a regression.
  $B/rtgcn-report --logs "$R" --harness table4_baselines \
    --out results/BENCH_table4.json --md results/BENCH_table4.md
  if [ -f results/BENCH_table4.baseline.json ]; then
    # +50%: past the measured same-binary noise floor (~±40%) of the
    # shared single-core reference box.
    $B/rtgcn-report --baseline results/BENCH_table4.baseline.json \
      results/BENCH_table4.json --threshold 1.5
  fi
fi
echo ALL_EXPERIMENTS_DONE
