//! Offline stand-in for `serde` — the crates-io registry is unreachable in
//! this environment, so the workspace vendors a minimal data-model-based
//! serialization framework with the same spelling at use sites:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string_pretty,
//! from_str}`.
//!
//! Instead of upstream's visitor architecture, types convert to/from a
//! self-describing [`Value`] tree (null / bool / integers / float / string /
//! sequence / ordered map). `serde_json` renders and parses that tree. The
//! derive macros live in the sibling `serde_derive` crate and are
//! re-exported here exactly like upstream's `derive` feature.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order of the deriving struct).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Map lookup by key (None for non-maps or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that lower into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent struct fields; `Option<T>` overrides this to `None`.
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field {field:?}")))
    }
}

/// Derive-internal helper: typed field lookup in a struct map.
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing(key),
    }
}

// ---------------------------------------------------------------- primitives

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(format!("expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(format!("expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // JSON has no NaN literal; absent/null round-trips as NaN.
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom(format!("expected f64, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Shortest-repr widening so 0.1f32 serializes as 0.1, not
        // 0.10000000149011612.
        if self.is_finite() {
            Value::F64(self.to_string().parse().unwrap_or(*self as f64))
        } else {
            Value::F64(*self as f64)
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------- compositions

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys (JSON object keys are strings; integers stringify like
/// upstream serde_json).
pub trait SerializeKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|e| Error::custom(format!("bad integer key {key:?}: {e}")))
            }
        }
    )*};
}
int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: SerializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic artifacts.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        let f = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn f32_uses_shortest_repr() {
        assert_eq!(0.1f32.to_value(), Value::F64(0.1));
    }

    #[test]
    fn option_missing_field_is_none() {
        let m: Vec<(String, Value)> = vec![];
        let v: Option<f64> = __field(&m, "absent").unwrap();
        assert!(v.is_none());
        let r: Result<f64, _> = __field(&m, "absent");
        assert!(r.is_err());
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(5usize, 1.25f64);
        let v = m.to_value();
        assert_eq!(v.get("5").and_then(Value::as_f64), Some(1.25));
        let back: BTreeMap<usize, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
