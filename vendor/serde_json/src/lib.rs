//! Offline stand-in for `serde_json` over the vendored [`serde`] data model:
//! compact and pretty writers plus a recursive-descent parser. Covers the
//! API surface the workspace uses (`to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, [`Value`]).

pub use serde::{Error, Value};
use std::fmt::Write as _;

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact single-line JSON (what the JSONL sinks write).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Lower a value into the data model without rendering.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from the data model.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// -------------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Keep floats recognisably floats (serde_json prints 1.0,
                // Rust's shortest repr prints 1).
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
            write_escaped(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, indent, depth + 1);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad sequence at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad map at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        m.insert("a b".into(), vec![1.0, -2.5]);
        m.insert("c\"d".into(), vec![]);
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, r#"{"a b":[1.0,-2.5],"c\"d":[]}"#);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a b\": ["));
        let back: BTreeMap<String, Vec<f64>> = from_str(&compact).unwrap();
        assert_eq!(back, m);
        let back2: BTreeMap<String, Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(back2, m);
    }

    #[test]
    fn parses_nested_values() {
        let v: Value = from_str(r#"{"k": [1, 2.5, null, true, "x\n"], "n": -3}"#).unwrap();
        let seq = v.get("k").and_then(Value::as_seq).unwrap();
        assert_eq!(seq.len(), 5);
        assert_eq!(seq[0].as_u64(), Some(1));
        assert_eq!(seq[1].as_f64(), Some(2.5));
        assert_eq!(seq[2], Value::Null);
        assert_eq!(seq[4].as_str(), Some("x\n"));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(-3));
    }

    #[test]
    fn nan_and_infinity_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&3.25f64).unwrap(), "3.25");
    }
}
