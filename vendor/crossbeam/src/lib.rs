//! Offline stand-in for the `crossbeam` scoped-thread API, implemented over
//! `std::thread::scope` (stable since 1.63). Only the surface the workspace
//! uses is provided: [`scope`] with [`Scope::spawn`], where the spawn closure
//! receives the scope again (crossbeam's signature) so nested spawns work.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result type matching `crossbeam::thread::Result`.
pub type ThreadResult<T> = std::thread::Result<T>;

/// A scope handle passed to [`scope`]'s closure and to every spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the
    /// scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning borrowing threads. Returns `Err` with the
/// panic payload if the closure or any unjoined spawned thread panicked
/// (crossbeam semantics).
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
