//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! poison-free `lock()`/`read()`/`write()` API, layered on `std::sync`.
//! Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), so a panicked holder never wedges telemetry.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
