//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no syn/quote — crates-io is unreachable here). Supports exactly the
//! shapes this workspace derives on:
//!
//! - structs with named fields → JSON object keyed by field name;
//! - enums whose variants are all unit variants → JSON string of the
//!   variant name.
//!
//! Anything else (tuple structs, data-carrying enums, generic types) is a
//! deliberate compile error pointing here, so a future contributor extends
//! the macro instead of silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` already consumed ⇒ consume the `[...]` group;
/// also tolerate the inner-attribute `!`).
fn skip_attr(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
        iter.next();
    }
    iter.next(); // the [...] group
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Header: attributes, visibility, then `struct`/`enum` + name.
    let kind;
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Skip optional `(crate)`/`(super)` group.
                        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                    }
                    "struct" | "enum" => {
                        kind = s;
                        break;
                    }
                    other => return Err(format!("unsupported item kind `{other}`")),
                }
            }
            other => return Err(format!("unexpected token {other:?} before item keyword")),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}` (see vendor/serde_derive)"
        ));
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit/tuple struct `{name}` is not supported"))
            }
            Some(_) => continue, // where-clause tokens etc. (not used in-repo)
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    if kind == "struct" {
        let fields = parse_named_fields(body, &name)?;
        Ok(Item::Struct { name, fields })
    } else {
        let variants = parse_unit_variants(body, &name)?;
        Ok(Item::Enum { name, variants })
    }
}

/// Field names of a named-field struct body, skipping attributes and
/// visibility, and balancing `<...>` so commas inside generic types don't
/// split fields.
fn parse_named_fields(body: TokenStream, owner: &str) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Field prelude: attributes + optional visibility.
        let field_name = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("unexpected token {other:?} in fields of `{owner}`"))
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field_name}` of `{owner}`, got {other:?} \
                     (tuple structs are not supported)"
                ))
            }
        }
        fields.push(field_name);
        // Consume the type up to a top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, owner: &str) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match iter.next() {
                    None => return Ok(variants),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => {
                        return Err(format!(
                            "enum `{owner}` has a non-unit variant near {other:?}; \
                             vendored serde_derive only supports unit variants"
                        ))
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token {other:?} in enum `{owner}`")),
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let __m = __v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected map for \", stringify!({name}))))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
