//! Offline stand-in for `criterion`. Same macro/type spelling as upstream
//! for the subset the workspace benches use; measurement is a plain
//! warmup-then-sample wall-clock loop (no outlier analysis, no HTML report).
//! Per-benchmark time budget is tunable via `RTGCN_BENCH_MS` (default 200 ms
//! measurement after 50 ms warmup).

use std::fmt::Display;
use std::time::{Duration, Instant};

fn measure_budget() -> Duration {
    std::env::var("RTGCN_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(200))
}

/// Runs closures handed to [`Bencher::iter`] and accumulates timing.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/branch predictors settle and get a cost estimate.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().checked_div(warm_iters as u32).unwrap_or(warmup);

        // Measurement: as many iterations as fit the budget, at least one.
        let budget = measure_budget();
        let n = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.total = t.elapsed();
        self.iters = n;
    }

    fn mean(&self) -> Duration {
        self.total.checked_div(self.iters.max(1) as u32).unwrap_or_default()
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    println!(
        "{label:<40} time: [{}]  ({} iters)",
        format_time(b.mean()),
        b.iters
    );
}

/// Benchmark identifier; only the `from_parameter` constructor is used here.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self(p.to_string())
    }

    pub fn new<N: Display, P: Display>(name: N, p: P) -> Self {
        Self(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, name: N, f: F) {
        run_one(&name.to_string(), f);
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Upstream controls the statistical sample count; the stand-in's loop is
    /// budget-driven, so this is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    pub fn bench_with_input<N: Display, I, F>(&mut self, id: N, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        std::env::set_var("RTGCN_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("matmul", 64).to_string(), "matmul/64");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_time(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_time(Duration::from_micros(1500)), "1.500 ms");
    }
}
