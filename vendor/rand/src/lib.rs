//! Offline stand-in for `rand` 0.8 — the crates-io registry is unreachable
//! in this build environment, so the workspace vendors the subset of the API
//! it actually uses: [`rngs::StdRng`], [`SeedableRng`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`]/`choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, which matches
//! the statistical quality the workspace needs (seeded, reproducible
//! experiment streams). Streams are NOT bit-compatible with upstream rand;
//! nothing in the repo depends on upstream streams, only on determinism.

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with SplitMix64 (same approach
    /// as upstream rand).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let w = sm.next().to_le_bytes();
            let take = (bytes.len() - i).min(8);
            bytes[i..i + take].copy_from_slice(&w[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the tiny
                // modulo bias over a u64 stream is irrelevant for experiments.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                s + u * (e - s)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface (auto-implemented for every RNG).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; stands in for
    /// upstream `StdRng` (streams differ from upstream, determinism does
    /// not).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 1];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random element choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-2.5f32..1.5);
            assert!((-2.5..1.5).contains(&f));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
