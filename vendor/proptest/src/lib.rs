//! Offline stand-in for `proptest`. Keeps the same spelling as upstream for
//! the subset this workspace uses — `proptest!` with an optional
//! `#![proptest_config(...)]` header, range/tuple/`Just` strategies,
//! `collection::vec`, `prop_map`/`prop_flat_map`, and the `prop_assert*!`
//! macros — but samples purely at random (no shrinking, no persisted failure
//! seeds). Sampling is deterministic per (test name, case index), so failures
//! reproduce across runs.

use std::ops::Range;

pub type TestRng = rand::rngs::StdRng;

/// Deterministic per-case RNG: hash of the test name mixed with the case
/// index, so each test sees an independent but reproducible stream.
pub fn __rng(test_name: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values. Upstream proptest builds shrinkable value
/// trees; this stand-in only samples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bound for [`vec`]: an exact `usize` or a half-open range.
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.hi > self.lo + 1 {
                rng.gen_range(self.lo..self.hi)
            } else {
                self.lo
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty vec length range {lo}..{hi}");
        VecStrategy { elem, lo, hi }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Upstream returns a `TestCaseError`; here a failed assertion just panics,
/// which the surrounding `#[test]` reports the same way.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = (0usize..100, -1.0f32..1.0);
        let a = crate::Strategy::sample(&strat, &mut crate::__rng("t", 7));
        let b = crate::Strategy::sample(&strat, &mut crate::__rng("t", 7));
        assert_eq!(a, b);
        let c = crate::Strategy::sample(&strat, &mut crate::__rng("t", 8));
        assert!(a != c || {
            // one collision is plausible; two consecutive would be a bug
            let d = crate::Strategy::sample(&strat, &mut crate::__rng("t", 9));
            a != d
        });
    }

    #[test]
    fn vec_respects_length_bounds() {
        let strat = crate::collection::vec(0.0f64..1.0, 3..6);
        for case in 0..50 {
            let v = crate::Strategy::sample(&strat, &mut crate::__rng("len", case));
            assert!((3..6).contains(&v.len()));
        }
        let exact = crate::collection::vec(0usize..5, 4usize);
        let v = crate::Strategy::sample(&exact, &mut crate::__rng("exact", 0));
        assert_eq!(v.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro front-end: tuple patterns, flat_map, Just, prop_map.
        #[test]
        fn macro_roundtrip((a, b) in (1usize..5, 1usize..5).prop_flat_map(|d| Just(d)),
                           doubled in (0i64..10).prop_map(|x| x * 2)) {
            prop_assert!(a < 5 && b < 5, "out of range: {a} {b}");
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}
