//! Workspace integration tests: the full pipeline from synthetic market
//! generation through training to backtested metrics, spanning every crate.

use rtgcn::baselines::{CommonConfig, ModelKind};
use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::{backtest, Oracle, RandomRanker};
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn micro_dataset(seed: u64) -> StockDataset {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 12;
    spec.train_days = 60;
    spec.test_days = 12;
    StockDataset::generate(spec, seed)
}

fn micro_gcn_config(strategy: Strategy) -> RtGcnConfig {
    RtGcnConfig {
        t_steps: 8,
        n_features: 2,
        rel_filters: 8,
        temporal_filters: 8,
        epochs: 2,
        dropout: 0.0,
        ..RtGcnConfig::with_strategy(strategy)
    }
}

#[test]
fn rtgcn_full_pipeline_produces_valid_metrics() {
    let ds = micro_dataset(1);
    for strategy in Strategy::ALL {
        let mut model = RtGcn::new(micro_gcn_config(strategy), &ds.relations(RelationKind::Both), 1);
        let fit = model.fit(&ds);
        assert!(fit.final_loss.is_finite(), "{strategy:?} loss");
        let out = backtest(&mut model, &ds, &[1, 5, 10], 1);
        let mrr = out.mrr.expect("ranking model has MRR");
        assert!((0.0..=1.0).contains(&mrr), "{strategy:?} MRR {mrr}");
        for (&k, series) in &out.daily_cumulative {
            assert_eq!(series.len(), ds.spec.test_days, "{strategy:?} k={k}");
            assert!(series.iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn oracle_dominates_and_random_is_baseline_floor() {
    let ds = micro_dataset(2);
    let o = backtest(&mut Oracle, &ds, &[1, 5], 2);
    let r = backtest(&mut RandomRanker::new(3), &ds, &[1, 5], 2);
    // Train a real model and place it between the bounds (weak check: must
    // not exceed the oracle).
    let mut model =
        RtGcn::new(micro_gcn_config(Strategy::Uniform), &ds.relations(RelationKind::Both), 2);
    model.fit(&ds);
    let m = backtest(&mut model, &ds, &[1, 5], 2);
    assert!(o.irr[&1] >= m.irr[&1], "oracle must upper-bound any model");
    assert!(o.mrr.unwrap() >= m.mrr.unwrap());
    assert!(o.irr[&1] > r.irr[&1], "oracle must beat random");
}

#[test]
fn every_baseline_runs_end_to_end_on_micro_data() {
    let ds = micro_dataset(3);
    let common = CommonConfig {
        t_steps: 8,
        n_features: 2,
        hidden: 8,
        epochs: 1,
        ..Default::default()
    };
    for kind in ModelKind::TABLE4 {
        let mut model = rtgcn::baselines::build(kind, &common, 3);
        let fit = model.fit(&ds);
        assert!(fit.train_secs >= 0.0, "{kind:?}");
        let out = backtest(model.as_mut(), &ds, &[1, 5], 3);
        assert_eq!(out.mrr.is_some(), model.can_rank(), "{kind:?} MRR presence");
        assert!(out.irr[&1].is_finite(), "{kind:?} IRR");
    }
}

#[test]
fn training_and_testing_split_never_overlaps() {
    let ds = micro_dataset(4);
    for t in [4usize, 8, 12] {
        let train = ds.train_end_days(t);
        let test = ds.test_end_days();
        assert!(train.iter().all(|d| d + 1 < ds.spec.test_start()));
        assert!(test.iter().all(|&d| d >= ds.spec.test_start()));
    }
}

#[test]
fn relational_signal_improves_over_relation_blind_model() {
    // On a market with lead-lag spillover along relation edges, RT-GCN
    // should rank stocks better (higher MRR) than the same-capacity
    // relation-blind Rank_LSTM. MRR is used rather than IRR because the
    // short test window sits inside the simulated crash, where absolute
    // returns are regime-dominated. Averaged over seeds to avoid flakiness.
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 36;
    spec.train_days = 110;
    spec.test_days = 25;
    let mut gcn_total = 0.0;
    let mut lstm_total = 0.0;
    for seed in [5u64, 6, 7] {
        let ds = StockDataset::generate(spec.clone(), seed);
        let mut gcn = RtGcn::new(
            RtGcnConfig { epochs: 3, t_steps: 8, n_features: 2, ..RtGcnConfig::with_strategy(Strategy::Weighted) },
            &ds.relations(RelationKind::Both),
            seed,
        );
        gcn.fit(&ds);
        gcn_total += backtest(&mut gcn, &ds, &[5], seed).mrr.unwrap();
        let mut lstm = rtgcn::baselines::LstmRanker::ranking(
            rtgcn::baselines::SeqConfig { epochs: 3, t_steps: 8, n_features: 2, ..Default::default() },
            seed,
        );
        lstm.fit(&ds);
        lstm_total += backtest(&mut lstm, &ds, &[5], seed).mrr.unwrap();
    }
    assert!(
        gcn_total > lstm_total,
        "relation-aware model should out-rank relation-blind on average: MRR {gcn_total} vs {lstm_total}"
    );
}

#[test]
fn umbrella_crate_reexports_work() {
    // Compile-time check that the umbrella crate exposes every layer.
    let t = rtgcn::tensor::Tensor::scalar(1.0);
    assert_eq!(t.item(), 1.0);
    let mut r = rtgcn::graph::RelationTensor::new(3, 1);
    r.connect(0, 1, 0);
    assert!(r.related(1, 0));
    let _ = rtgcn::eval::top_k_indices(&[0.3, 0.9], 1);
}
