//! Cross-crate property-based tests (proptest): invariants of the autodiff
//! engine, graph normalisation, metrics and significance tests that must
//! hold for arbitrary inputs.

use proptest::prelude::*;
use rtgcn::core::layers::{RelationalConv, TemporalConvBlock};
use rtgcn::core::{RtGcn, RtGcnConfig, Strategy as RtStrategy, StrategyCtx};
use rtgcn::eval::{cumulative_irr, daily_topk_return, rank_of, reciprocal_rank, top_k_indices};
use rtgcn::eval::{signed_rank_from_diffs, Alternative};
use rtgcn::graph::{renormalize_uniform, RelationTensor};
use rtgcn::telemetry as tel;
use rtgcn::tensor::{check_param_gradients, init, ConvSpec, ParamStore, Shape, Tape, Tensor};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(data in finite_vec(2..40)) {
        let n = data.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, n], data));
        let y = tape.softmax(x);
        let yd = tape.value(y);
        let sum: f32 = yd.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(yd.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    /// broadcast_to followed by reduce_to is the adjoint pair: reducing the
    /// broadcast of x must give x scaled by the broadcast multiplicity.
    #[test]
    fn broadcast_reduce_adjoint(rows in 1usize..5, cols in 1usize..5, data in finite_vec(1..5)) {
        let c = data.len().min(4);
        let x = Tensor::new([1, c], data[..c].to_vec());
        let target = Shape::from(vec![rows, c]);
        let b = x.broadcast_to(&target);
        let r = b.reduce_to(x.shape());
        for i in 0..c {
            prop_assert!((r.data()[i] - rows as f32 * x.data()[i]).abs() < 1e-3);
        }
        let _ = cols;
    }

    /// Σ grad of sum_all is exactly 1 everywhere, for any shape.
    #[test]
    fn sum_gradient_is_ones(data in finite_vec(1..60)) {
        let n = data.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data));
        let s = tape.sum_all(x);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        prop_assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        prop_assert_eq!(g.numel(), n);
    }

    /// Kipf-Welling renormalisation of any symmetric binary graph yields
    /// finite weights and symmetric output.
    #[test]
    fn renormalisation_finite_and_symmetric(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let mut rel = RelationTensor::new(n, 1);
        for (i, j) in edges {
            let (i, j) = (i % n, j % n);
            if i != j {
                rel.connect(i, j, 0);
            }
        }
        let adj = renormalize_uniform(n, &rel.directed_edges());
        prop_assert!(adj.weights.iter().all(|w| w.is_finite()));
        let dense = adj.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((dense.at(&[i, j]) - dense.at(&[j, i])).abs() < 1e-5);
            }
        }
    }

    /// top_k returns distinct indices whose scores dominate the rest.
    #[test]
    fn top_k_dominates_rest(scores in finite_vec(1..40), k in 1usize..10) {
        let picks = top_k_indices(&scores, k);
        let k_eff = k.min(scores.len());
        prop_assert_eq!(picks.len(), k_eff);
        let mut sorted = picks.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len(), "indices distinct");
        let worst_pick = picks.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
        for (i, &s) in scores.iter().enumerate() {
            if !picks.contains(&i) {
                prop_assert!(s <= worst_pick + 1e-6);
            }
        }
    }

    /// Reciprocal rank is in (0, 1] and is 1 iff the argmax stocks agree.
    #[test]
    fn reciprocal_rank_bounds(pred in finite_vec(2..30), seed in 0u64..100) {
        let n = pred.len();
        let truth: Vec<f32> = (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f32 / 500.0 - 1.0).collect();
        let rr = reciprocal_rank(&pred, &truth);
        prop_assert!(rr > 0.0 && rr <= 1.0);
        let best_true = top_k_indices(&truth, 1)[0];
        if rank_of(&pred, best_true) == 1 {
            prop_assert_eq!(rr, 1.0);
        }
    }

    /// Cumulative IRR of k=N (whole market) equals the sum of daily market
    /// means regardless of prediction order.
    #[test]
    fn irr_whole_market_is_order_invariant(truth in finite_vec(2..20), pred in finite_vec(2..20)) {
        let n = truth.len().min(pred.len());
        let (t, p) = (&truth[..n], &pred[..n]);
        let all = daily_topk_return(p, t, n);
        let mean = t.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        prop_assert!((all - mean).abs() < 1e-6);
        let series = cumulative_irr(&[all, all]);
        prop_assert!((series[1] - 2.0 * all).abs() < 1e-9);
    }

    /// Wilcoxon p-values are always in [0, 1] and monotone in the obvious
    /// direction: shifting all diffs up cannot increase the one-sided p.
    #[test]
    fn wilcoxon_p_bounds_and_shift(diffs in proptest::collection::vec(-5.0f64..5.0, 3..20)) {
        let base = signed_rank_from_diffs(&diffs, Alternative::Greater);
        prop_assert!((0.0..=1.0).contains(&base.p_value));
        let shifted: Vec<f64> = diffs.iter().map(|d| d + 10.0).collect();
        let up = signed_rank_from_diffs(&shifted, Alternative::Greater);
        prop_assert!(up.p_value <= base.p_value + 1e-9);
    }

    /// Causal convolution never leaks the future: truncating the input to a
    /// prefix leaves the matching output prefix unchanged.
    #[test]
    fn conv_causality(data in finite_vec(8..24), kernel in 1usize..4) {
        use rtgcn::tensor::ConvSpec;
        let l = data.len();
        let spec = ConvSpec::new(kernel, 1, 1);
        let w: Vec<f32> = (0..kernel).map(|i| 0.3 * (i as f32 + 1.0)).collect();
        let run = |xs: &[f32]| -> Vec<f32> {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::new([1, 1, xs.len()], xs.to_vec()));
            let wv = tape.leaf(Tensor::new([1, 1, kernel], w.clone()));
            let b = tape.leaf(Tensor::zeros([1]));
            let y = tape.conv1d_causal(x, wv, b, spec);
            tape.value(y).data().to_vec()
        };
        let full = run(&data);
        let half = run(&data[..l / 2]);
        for i in 0..l / 2 {
            prop_assert!((full[i] - half[i]).abs() < 1e-4, "leak at step {i}");
        }
    }

    /// Gauge series read back exactly what was recorded, in recording order
    /// with strictly increasing indices, regardless of the sample values.
    #[test]
    fn gauge_series_readback_is_order_preserving(values in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let _guard = tel::test_scope(tel::Level::Summary);
        for (i, &v) in values.iter().enumerate() {
            tel::gauge("prop.series", i as u64, v);
        }
        let pts = tel::series_points("prop.series");
        prop_assert_eq!(pts.len(), values.len());
        for (i, p) in pts.iter().enumerate() {
            prop_assert_eq!(p.index, i as u64);
            prop_assert_eq!(p.value, values[i]);
            if i > 0 {
                prop_assert!(p.index > pts[i - 1].index, "indices strictly increasing");
            }
        }
    }

    /// Telemetry events survive a JSONL round-trip bit-for-bit for any
    /// finite payload (NaN legitimately degrades to null and back to NaN).
    #[test]
    fn event_jsonl_round_trip(
        count in 0u64..1_000_000_000_000,
        total_ns in 0u64..1_000_000_000_000,
        value in -1e12f64..1e12,
        name_sel in 0usize..4,
        msg_sel in 0usize..3,
    ) {
        let names = ["fit.loss", "backtest.irr.k1", "seed/fit/epoch", "tape.nodes"];
        let msgs = ["", "Healthy", "loss \"quoted\" \\ and escaped"];
        let e = tel::Event {
            ts_ms: 1,
            kind: "series".into(),
            name: names[name_sel].into(),
            count,
            total_ns,
            p50_ns: total_ns / 2,
            p95_ns: total_ns,
            p99_ns: total_ns,
            value,
            msg: msgs[msg_sel].into(),
        };
        let line = serde_json::to_string(&e).unwrap();
        let back: tel::Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, e);
    }
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for the fused kernels (shared harness:
// rtgcn::tensor::check_param_gradients, central differences, relative
// tolerance 1e-4).
// ---------------------------------------------------------------------------

fn grad_check_relations() -> RelationTensor {
    let mut r = RelationTensor::new(4, 2);
    r.connect(0, 1, 0);
    r.connect(1, 2, 1);
    r.connect(0, 3, 0);
    r
}

/// The fused relational convolution (batched spmm + time-batched matmuls)
/// must match central differences for every parameter, under each of the
/// three adjacency strategies — this exercises spmm_batched,
/// edge_dot_batched, concat_cols and the batched renormalisation end to end.
#[test]
fn fused_relational_conv_gradient_check_all_strategies() {
    let rel = grad_check_relations();
    let ctx = StrategyCtx::new(&rel);
    let mut rng = init::rng(41);
    let x = init::normal([3, 4, 2], 0.6, &mut rng);
    for strategy in RtStrategy::ALL {
        let mut store = ParamStore::new();
        let mut prng = init::rng(17);
        let conv = RelationalConv::new(&mut store, "rc", 2, 4, 2, strategy, &mut prng);
        check_param_gradients(&mut store, 1e-2, 1e-4, 16, |tape, store| {
            let x3 = tape.constant(x.clone());
            let out = conv.forward_fused(tape, store, &ctx, x3, true);
            let sq = tape.square(out);
            let s = tape.sum_all(sq);
            tape.scale(s, 0.1)
        })
        .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
    }
}

/// Same check through the serial reference path — both implementations must
/// be *correct*, not merely mutually consistent.
#[test]
fn serial_relational_conv_gradient_check_all_strategies() {
    let rel = grad_check_relations();
    let ctx = StrategyCtx::new(&rel);
    let mut rng = init::rng(41);
    let x = init::normal([3, 4, 2], 0.6, &mut rng);
    for strategy in RtStrategy::ALL {
        let mut store = ParamStore::new();
        let mut prng = init::rng(17);
        let conv = RelationalConv::new(&mut store, "rc", 2, 4, 2, strategy, &mut prng);
        check_param_gradients(&mut store, 1e-2, 1e-4, 16, |tape, store| {
            let xs: Vec<_> = (0..3)
                .map(|p| {
                    let plane: Vec<f32> = x.data()[p * 8..(p + 1) * 8].to_vec();
                    tape.constant(Tensor::new([4, 2], plane))
                })
                .collect();
            let outs = conv.forward(tape, store, &ctx, &xs);
            let stacked = tape.stack0(&outs);
            let sq = tape.square(stacked);
            let s = tape.sum_all(sq);
            tape.scale(s, 0.1)
        })
        .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
    }
}

/// TCN residual block (weight-norm conv → ReLU → residual/1×1 skip): FD
/// check over v, gain, bias and the skip projection.
#[test]
fn temporal_conv_block_gradient_check() {
    let mut store = ParamStore::new();
    let mut rng = init::rng(24);
    let spec = ConvSpec::new(3, 2, 1);
    let block = TemporalConvBlock::new(&mut store, "tcn", 3, 4, spec, 0.0, &mut rng);
    assert!(block.skip.is_some(), "channel change must engage the 1×1 skip");
    let x = init::normal([2, 3, 6], 0.5, &mut rng);
    // eps is deliberately small: the block's ReLU means a larger probe step
    // can walk an activation across its kink and corrupt the central
    // difference.
    check_param_gradients(&mut store, 2e-3, 1e-4, 12, |tape, store| {
        let xv = tape.constant(x.clone());
        let mut drng = init::rng(0);
        let y = block.forward(tape, store, xv, false, &mut drng);
        let sq = tape.square(y);
        let s = tape.sum_all(sq);
        tape.scale(s, 0.1)
    })
    .unwrap();
}

/// The combined regression + pairwise-ranking objective (Eq. 9): FD check of
/// ∂loss/∂scores through `combined_rank_loss_parts`.
#[test]
fn combined_rank_loss_gradient_check() {
    let mut store = ParamStore::new();
    let scores =
        store.add("scores", Tensor::from_vec(vec![0.31, -0.52, 0.84, 0.12, -0.27]));
    let y = Tensor::from_vec(vec![0.02, -0.04, 0.07, -0.01, 0.03]);
    check_param_gradients(&mut store, 1e-2, 1e-4, 8, |tape, store| {
        let s = store.bind(tape, scores);
        tape.combined_rank_loss_parts(s, &y, 0.1).0
    })
    .unwrap();
}

// ---------------------------------------------------------------------------
// Fused vs serial parity: identical scores and parameter gradients across
// random shapes, strategies and graphs (ISSUE satellite 2).
// ---------------------------------------------------------------------------

/// Forward scores + absorbed parameter gradients of one combined-loss step.
fn scores_and_grads(model: &mut RtGcn, x: &Tensor, y: &Tensor) -> (Vec<f32>, Vec<(String, Vec<f32>)>) {
    let mut tape = Tape::new();
    let s = model.forward(&mut tape, x, true);
    let scores = tape.value(s).data().to_vec();
    let loss = tape.combined_rank_loss(s, y, 0.1);
    tape.backward(loss);
    model.store.absorb_grads(&tape);
    let grads = model
        .store
        .ids()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|id| (model.store.name(id).to_string(), model.store.grad(id).data().to_vec()))
        .collect();
    model.store.clear_bindings();
    (scores, grads)
}

fn assert_parity(rel: &RelationTensor, strategy: RtStrategy, t: usize, d: usize, seed: u64) {
    let n = rel.num_stocks();
    let mut cfg = RtGcnConfig::with_strategy(strategy);
    cfg.t_steps = t;
    cfg.n_features = d;
    cfg.rel_filters = 5;
    cfg.temporal_filters = 4;
    cfg.dropout = 0.0;
    cfg.fused = true;
    let mut serial_cfg = cfg.clone();
    serial_cfg.fused = false;
    let mut fused = RtGcn::new(cfg, rel, seed);
    let mut serial = RtGcn::new(serial_cfg, rel, seed);
    let mut rng = init::rng(seed ^ 0x9e37);
    let x = init::normal([t, n, d], 0.5, &mut rng);
    let y = init::normal([n], 0.05, &mut rng);
    let (sf, gf) = scores_and_grads(&mut fused, &x, &y);
    let (ss, gs) = scores_and_grads(&mut serial, &x, &y);
    for (a, b) in sf.iter().zip(&ss) {
        assert!(
            (a - b).abs() <= 1e-6 * b.abs().max(1.0),
            "{strategy:?} t={t} n={n} d={d}: score fused {a} vs serial {b}"
        );
    }
    assert_eq!(gf.len(), gs.len(), "same parameter set");
    for ((name_f, ga), (name_s, gb)) in gf.iter().zip(&gs) {
        assert_eq!(name_f, name_s);
        for (a, b) in ga.iter().zip(gb) {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                "{strategy:?} t={t} n={n} d={d}: grad {name_f} fused {a} vs serial {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused and serial paths agree to 1e-6 on scores and every parameter
    /// gradient across random window lengths, universe sizes, feature
    /// counts, relation types, strategies and random (possibly empty —
    /// i.e. self-loops-only) graphs.
    #[test]
    fn fused_serial_parity_random_shapes(
        t in 2usize..6,
        n in 3usize..7,
        d in 1usize..5,
        k in 1usize..3,
        strat_i in 0usize..3,
        edges in proptest::collection::vec((0usize..7, 0usize..7, 0usize..3), 0..14),
        seed in 0u64..1000,
    ) {
        let mut rel = RelationTensor::new(n, k);
        for (i, j, ty) in edges {
            let (i, j, ty) = (i % n, j % n, ty % k);
            if i != j {
                rel.connect(i, j, ty);
            }
        }
        assert_parity(&rel, RtStrategy::ALL[strat_i], t, d, seed);
    }
}

/// Degenerate graphs exercised explicitly: no relation edges at all (the
/// renormalised adjacency is self-loops only) and a disconnected graph with
/// isolated nodes next to one connected pair.
#[test]
fn fused_serial_parity_degenerate_graphs() {
    for strategy in RtStrategy::ALL {
        // No edges: adjacency degenerates to pure self-loops.
        let empty = RelationTensor::new(5, 1);
        assert_parity(&empty, strategy, 4, 2, 3);
        // Disconnected: nodes 2..=5 isolated, one related pair at 0–1.
        let mut disc = RelationTensor::new(6, 2);
        disc.connect(0, 1, 1);
        assert_parity(&disc, strategy, 3, 3, 5);
    }
}

/// A healthy short fit must come back `Healthy` with finite gradient and
/// weight norms for every monitored epoch — the end-to-end contract of the
/// training-health monitor through the umbrella crate.
#[test]
fn smoke_fit_reports_finite_health_diagnostics() {
    use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker};
    use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

    let _guard = tel::test_scope(tel::Level::Summary);
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 30;
    spec.test_days = 6;
    let ds = StockDataset::generate(spec, 9);
    let cfg = RtGcnConfig {
        t_steps: 6,
        n_features: 2,
        rel_filters: 6,
        temporal_filters: 6,
        epochs: 2,
        ..RtGcnConfig::default()
    };
    let mut model = RtGcn::new(cfg, &ds.relations(RelationKind::Both), 4);
    let report = model.fit(&ds);
    assert_eq!(report.health, tel::health::HealthVerdict::Healthy);
    assert_eq!(report.epoch_health.len(), 2);
    for eh in &report.epoch_health {
        assert!(eh.grad_norm.is_finite() && eh.grad_norm > 0.0, "{eh:?}");
        assert!(eh.weight_norm.is_finite() && eh.weight_norm > 0.0, "{eh:?}");
        assert!(eh.loss.is_finite(), "{eh:?}");
        assert_eq!(eh.non_finite_steps, 0);
    }
}
