//! Cross-crate property-based tests (proptest): invariants of the autodiff
//! engine, graph normalisation, metrics and significance tests that must
//! hold for arbitrary inputs.

use proptest::prelude::*;
use rtgcn::eval::{cumulative_irr, daily_topk_return, rank_of, reciprocal_rank, top_k_indices};
use rtgcn::eval::{signed_rank_from_diffs, Alternative};
use rtgcn::graph::{renormalize_uniform, RelationTensor};
use rtgcn::telemetry as tel;
use rtgcn::tensor::{Shape, Tape, Tensor};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(data in finite_vec(2..40)) {
        let n = data.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, n], data));
        let y = tape.softmax(x);
        let yd = tape.value(y);
        let sum: f32 = yd.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(yd.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    /// broadcast_to followed by reduce_to is the adjoint pair: reducing the
    /// broadcast of x must give x scaled by the broadcast multiplicity.
    #[test]
    fn broadcast_reduce_adjoint(rows in 1usize..5, cols in 1usize..5, data in finite_vec(1..5)) {
        let c = data.len().min(4);
        let x = Tensor::new([1, c], data[..c].to_vec());
        let target = Shape::from(vec![rows, c]);
        let b = x.broadcast_to(&target);
        let r = b.reduce_to(x.shape());
        for i in 0..c {
            prop_assert!((r.data()[i] - rows as f32 * x.data()[i]).abs() < 1e-3);
        }
        let _ = cols;
    }

    /// Σ grad of sum_all is exactly 1 everywhere, for any shape.
    #[test]
    fn sum_gradient_is_ones(data in finite_vec(1..60)) {
        let n = data.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data));
        let s = tape.sum_all(x);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        prop_assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        prop_assert_eq!(g.numel(), n);
    }

    /// Kipf-Welling renormalisation of any symmetric binary graph yields
    /// finite weights and symmetric output.
    #[test]
    fn renormalisation_finite_and_symmetric(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let mut rel = RelationTensor::new(n, 1);
        for (i, j) in edges {
            let (i, j) = (i % n, j % n);
            if i != j {
                rel.connect(i, j, 0);
            }
        }
        let adj = renormalize_uniform(n, &rel.directed_edges());
        prop_assert!(adj.weights.iter().all(|w| w.is_finite()));
        let dense = adj.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((dense.at(&[i, j]) - dense.at(&[j, i])).abs() < 1e-5);
            }
        }
    }

    /// top_k returns distinct indices whose scores dominate the rest.
    #[test]
    fn top_k_dominates_rest(scores in finite_vec(1..40), k in 1usize..10) {
        let picks = top_k_indices(&scores, k);
        let k_eff = k.min(scores.len());
        prop_assert_eq!(picks.len(), k_eff);
        let mut sorted = picks.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len(), "indices distinct");
        let worst_pick = picks.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
        for (i, &s) in scores.iter().enumerate() {
            if !picks.contains(&i) {
                prop_assert!(s <= worst_pick + 1e-6);
            }
        }
    }

    /// Reciprocal rank is in (0, 1] and is 1 iff the argmax stocks agree.
    #[test]
    fn reciprocal_rank_bounds(pred in finite_vec(2..30), seed in 0u64..100) {
        let n = pred.len();
        let truth: Vec<f32> = (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f32 / 500.0 - 1.0).collect();
        let rr = reciprocal_rank(&pred, &truth);
        prop_assert!(rr > 0.0 && rr <= 1.0);
        let best_true = top_k_indices(&truth, 1)[0];
        if rank_of(&pred, best_true) == 1 {
            prop_assert_eq!(rr, 1.0);
        }
    }

    /// Cumulative IRR of k=N (whole market) equals the sum of daily market
    /// means regardless of prediction order.
    #[test]
    fn irr_whole_market_is_order_invariant(truth in finite_vec(2..20), pred in finite_vec(2..20)) {
        let n = truth.len().min(pred.len());
        let (t, p) = (&truth[..n], &pred[..n]);
        let all = daily_topk_return(p, t, n);
        let mean = t.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        prop_assert!((all - mean).abs() < 1e-6);
        let series = cumulative_irr(&[all, all]);
        prop_assert!((series[1] - 2.0 * all).abs() < 1e-9);
    }

    /// Wilcoxon p-values are always in [0, 1] and monotone in the obvious
    /// direction: shifting all diffs up cannot increase the one-sided p.
    #[test]
    fn wilcoxon_p_bounds_and_shift(diffs in proptest::collection::vec(-5.0f64..5.0, 3..20)) {
        let base = signed_rank_from_diffs(&diffs, Alternative::Greater);
        prop_assert!((0.0..=1.0).contains(&base.p_value));
        let shifted: Vec<f64> = diffs.iter().map(|d| d + 10.0).collect();
        let up = signed_rank_from_diffs(&shifted, Alternative::Greater);
        prop_assert!(up.p_value <= base.p_value + 1e-9);
    }

    /// Causal convolution never leaks the future: truncating the input to a
    /// prefix leaves the matching output prefix unchanged.
    #[test]
    fn conv_causality(data in finite_vec(8..24), kernel in 1usize..4) {
        use rtgcn::tensor::ConvSpec;
        let l = data.len();
        let spec = ConvSpec::new(kernel, 1, 1);
        let w: Vec<f32> = (0..kernel).map(|i| 0.3 * (i as f32 + 1.0)).collect();
        let run = |xs: &[f32]| -> Vec<f32> {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::new([1, 1, xs.len()], xs.to_vec()));
            let wv = tape.leaf(Tensor::new([1, 1, kernel], w.clone()));
            let b = tape.leaf(Tensor::zeros([1]));
            let y = tape.conv1d_causal(x, wv, b, spec);
            tape.value(y).data().to_vec()
        };
        let full = run(&data);
        let half = run(&data[..l / 2]);
        for i in 0..l / 2 {
            prop_assert!((full[i] - half[i]).abs() < 1e-4, "leak at step {i}");
        }
    }

    /// Gauge series read back exactly what was recorded, in recording order
    /// with strictly increasing indices, regardless of the sample values.
    #[test]
    fn gauge_series_readback_is_order_preserving(values in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let _guard = tel::test_scope(tel::Level::Summary);
        for (i, &v) in values.iter().enumerate() {
            tel::gauge("prop.series", i as u64, v);
        }
        let pts = tel::series_points("prop.series");
        prop_assert_eq!(pts.len(), values.len());
        for (i, p) in pts.iter().enumerate() {
            prop_assert_eq!(p.index, i as u64);
            prop_assert_eq!(p.value, values[i]);
            if i > 0 {
                prop_assert!(p.index > pts[i - 1].index, "indices strictly increasing");
            }
        }
    }

    /// Telemetry events survive a JSONL round-trip bit-for-bit for any
    /// finite payload (NaN legitimately degrades to null and back to NaN).
    #[test]
    fn event_jsonl_round_trip(
        count in 0u64..1_000_000_000_000,
        total_ns in 0u64..1_000_000_000_000,
        value in -1e12f64..1e12,
        name_sel in 0usize..4,
        msg_sel in 0usize..3,
    ) {
        let names = ["fit.loss", "backtest.irr.k1", "seed/fit/epoch", "tape.nodes"];
        let msgs = ["", "Healthy", "loss \"quoted\" \\ and escaped"];
        let e = tel::Event {
            ts_ms: 1,
            kind: "series".into(),
            name: names[name_sel].into(),
            count,
            total_ns,
            p50_ns: total_ns / 2,
            p95_ns: total_ns,
            p99_ns: total_ns,
            value,
            msg: msgs[msg_sel].into(),
        };
        let line = serde_json::to_string(&e).unwrap();
        let back: tel::Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, e);
    }
}

/// A healthy short fit must come back `Healthy` with finite gradient and
/// weight norms for every monitored epoch — the end-to-end contract of the
/// training-health monitor through the umbrella crate.
#[test]
fn smoke_fit_reports_finite_health_diagnostics() {
    use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker};
    use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

    let _guard = tel::test_scope(tel::Level::Summary);
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 30;
    spec.test_days = 6;
    let ds = StockDataset::generate(spec, 9);
    let cfg = RtGcnConfig {
        t_steps: 6,
        n_features: 2,
        rel_filters: 6,
        temporal_filters: 6,
        epochs: 2,
        ..RtGcnConfig::default()
    };
    let mut model = RtGcn::new(cfg, &ds.relations(RelationKind::Both), 4);
    let report = model.fit(&ds);
    assert_eq!(report.health, tel::health::HealthVerdict::Healthy);
    assert_eq!(report.epoch_health.len(), 2);
    for eh in &report.epoch_health {
        assert!(eh.grad_norm.is_finite() && eh.grad_norm > 0.0, "{eh:?}");
        assert!(eh.weight_norm.is_finite() && eh.weight_norm > 0.0, "{eh:?}");
        assert!(eh.loss.is_finite(), "{eh:?}");
        assert_eq!(eh.non_finite_steps, 0);
    }
}
